//! The register VM that executes compiled [`Program`]s.
//!
//! Where the tree-walker re-traverses `Stmt`/`Expr` nodes and keeps its
//! environment as `Vec<Option<Value>>`, the VM runs a flat instruction
//! stream over an *unboxed* register file: parallel int/float/bool lanes
//! selected by a one-byte tag, so the hot loop never allocates and scalar
//! fast paths skip [`Value`] dispatch entirely.
//!
//! The VM maintains [`ExecStats`] identically to the interpreter — same
//! counters, same increments in the same places — so the two engines can be
//! differential-tested for bit-identical outputs *and* work counters (see
//! `tests/proptests.rs` at the workspace root).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::buffer::{AllocMeter, BufId, Buffer, BufferSet, VmBufs};
use crate::bytecode::{Instr, LaneTag, Program, Reg, VBase, VCost, VRhs, VScale};
use crate::error::RuntimeError;
use crate::expr::BinOp;
use crate::interp::ExecStats;
use crate::value::{Value, ValueKind};
use crate::var::Var;

/// Cooperative interruption, checked on the same statement path as the
/// step budget: an externally-armed cancellation flag, an absolute
/// wall-clock deadline, or both.  Tripping either aborts the run with the
/// typed [`RuntimeError::Deadline`]; buffers stay reusable exactly as
/// after a step-budget abort (the next run truncates them in place).
///
/// The flag is shared (`Arc`), so cloning a VM for a shard carries the
/// same cancellation source, and a service can arm one flag to stop a
/// request wherever it is executing.  The wall clock is only consulted
/// every [`Watch::TIME_CHECK_PERIOD`] statements to keep the hot path at
/// one relaxed atomic load.
#[derive(Debug, Clone, Default)]
pub struct Watch {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    ms: u64,
    /// Fault-injection hook: panic once execution reaches this statement
    /// count — lets a test harness provoke a genuine mid-execution panic
    /// (buffers mid-append) without instrumenting generated code.
    fault_stmt: Option<u64>,
}

impl Watch {
    /// Statements between wall-clock deadline checks (a power of two so
    /// the check compiles to a mask).
    pub const TIME_CHECK_PERIOD: u64 = 1024;

    /// A watch that trips when `cancel` is set; `ms` is reported in the
    /// resulting [`RuntimeError::Deadline`].
    pub fn cancelled_by(cancel: Arc<AtomicBool>, ms: u64) -> Self {
        Watch { cancel: Some(cancel), deadline: None, ms, fault_stmt: None }
    }

    /// A watch that trips once the wall clock reaches `deadline`; `ms` is
    /// reported in the resulting [`RuntimeError::Deadline`].
    pub fn until(deadline: Instant, ms: u64) -> Self {
        Watch { cancel: None, deadline: Some(deadline), ms, fault_stmt: None }
    }

    /// Attach a cancellation flag to an existing watch.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Arm the fault-injection hook: the run panics at the first statement
    /// check at or past `stmt` (test harness use only).
    pub fn with_fault_at_stmt(mut self, stmt: u64) -> Self {
        self.fault_stmt = Some(stmt);
        self
    }

    /// The statement-path check both engines call: panics at an armed
    /// injection point, otherwise trips [`RuntimeError::Deadline`] on
    /// cancellation (every statement) or deadline expiry (every
    /// [`Watch::TIME_CHECK_PERIOD`] statements).
    #[inline]
    pub(crate) fn check(&self, stmts: u64) -> Result<(), RuntimeError> {
        if let Some(at) = self.fault_stmt {
            if stmts >= at {
                panic!("injected fault: panic at statement {at}");
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(RuntimeError::Deadline { ms: self.ms });
            }
        }
        if let Some(deadline) = self.deadline {
            if stmts.is_multiple_of(Self::TIME_CHECK_PERIOD) && Instant::now() >= deadline {
                return Err(RuntimeError::Deadline { ms: self.ms });
            }
        }
        Ok(())
    }
}

/// The runtime type tag of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tag {
    /// Never written (reading it is an unbound-variable error).
    Unset,
    /// The int lane holds the value.
    Int,
    /// The float lane holds the value.
    Float,
    /// The bool lane holds the value.
    Bool,
    /// The `missing` marker (no lane payload).
    Missing,
}

/// The result of an unboxed fast-path binary operation, before it is
/// written into a register lane.
#[derive(Debug, Clone, Copy)]
enum Computed {
    /// Integer result.
    Int(i64),
    /// Float result.
    Float(f64),
    /// Boolean result (comparisons and logic).
    Bool(bool),
}

/// A register virtual machine for compiled bytecode.
///
/// The VM owns the register file; buffers are passed to [`Vm::run`] so the
/// same program can execute repeatedly against different data — mirroring
/// [`crate::interp::Interpreter`]'s API.
#[derive(Debug, Clone)]
pub struct Vm {
    pub(crate) tags: Vec<Tag>,
    pub(crate) ints: Vec<i64>,
    pub(crate) floats: Vec<f64>,
    pub(crate) bools: Vec<bool>,
    pub(crate) stats: ExecStats,
    pub(crate) step_budget: Option<u64>,
    pub(crate) watch: Option<Watch>,
    pub(crate) alloc: AllocMeter,
}

impl Vm {
    /// Create a VM with a register file sized for `program`.
    pub fn new(program: &Program) -> Self {
        let n = program.num_regs();
        Vm {
            tags: vec![Tag::Unset; n],
            ints: vec![0; n],
            floats: vec![0.0; n],
            bools: vec![false; n],
            stats: ExecStats::default(),
            step_budget: None,
            watch: None,
            alloc: AllocMeter::default(),
        }
    }

    /// Limit the number of executed statements; exceeding the budget aborts
    /// execution with [`RuntimeError::StepBudgetExceeded`].
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Set or clear the step budget in place (used by the persistent VM
    /// that `finch`'s `CompiledKernel` keeps across reruns).
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        self.step_budget = budget;
    }

    /// Set or clear the cooperative [`Watch`] (deadline / cancellation),
    /// checked on the same statement path as the step budget.
    pub fn set_watch(&mut self, watch: Option<Watch>) {
        self.watch = watch;
    }

    /// Set or clear the output-allocation element budget; exceeding it
    /// aborts execution with [`RuntimeError::AllocBudgetExceeded`].
    pub fn set_alloc_budget(&mut self, budget: Option<u64>) {
        self.alloc.set_budget(budget);
    }

    /// Elements appended to growable outputs since the last reset.
    pub fn allocs(&self) -> u64 {
        self.alloc.used()
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Reset the work counters, the allocation meter, and the register
    /// file.
    pub fn reset(&mut self) {
        self.stats = ExecStats::default();
        self.alloc.reset();
        self.tags.iter_mut().for_each(|t| *t = Tag::Unset);
    }

    /// Read the current value of a variable after execution (useful in
    /// tests and for debugging generated code).
    pub fn var_value(&self, var: Var) -> Option<Value> {
        self.get(Reg(var.index() as u32))
    }

    #[inline]
    fn get(&self, r: Reg) -> Option<Value> {
        let i = r.index();
        match self.tags[i] {
            Tag::Unset => None,
            Tag::Int => Some(Value::Int(self.ints[i])),
            Tag::Float => Some(Value::Float(self.floats[i])),
            Tag::Bool => Some(Value::Bool(self.bools[i])),
            Tag::Missing => Some(Value::Missing),
        }
    }

    #[inline]
    fn value(&self, r: Reg, program: &Program) -> Result<Value, RuntimeError> {
        self.get(r).ok_or_else(|| RuntimeError::UnboundVariable { name: program.reg_name(r) })
    }

    #[inline]
    fn set(&mut self, r: Reg, v: Value) {
        let i = r.index();
        match v {
            Value::Int(x) => {
                self.tags[i] = Tag::Int;
                self.ints[i] = x;
            }
            Value::Float(x) => {
                self.tags[i] = Tag::Float;
                self.floats[i] = x;
            }
            Value::Bool(b) => {
                self.tags[i] = Tag::Bool;
                self.bools[i] = b;
            }
            Value::Missing => self.tags[i] = Tag::Missing,
        }
    }

    #[inline]
    fn set_int(&mut self, r: Reg, x: i64) {
        let i = r.index();
        self.tags[i] = Tag::Int;
        self.ints[i] = x;
    }

    #[inline]
    fn set_float(&mut self, r: Reg, x: f64) {
        let i = r.index();
        self.tags[i] = Tag::Float;
        self.floats[i] = x;
    }

    #[inline]
    fn set_bool(&mut self, r: Reg, b: bool) {
        let i = r.index();
        self.tags[i] = Tag::Bool;
        self.bools[i] = b;
    }

    /// Truthiness of a register, `None` when missing (strict callers turn
    /// that into a type error, lenient callers into `false`).
    #[inline]
    fn truthy(&self, r: Reg, program: &Program) -> Result<Option<bool>, RuntimeError> {
        let i = r.index();
        Ok(match self.tags[i] {
            Tag::Bool => Some(self.bools[i]),
            Tag::Int => Some(self.ints[i] != 0),
            Tag::Float => Some(self.floats[i] != 0.0),
            Tag::Missing => None,
            Tag::Unset => return Err(RuntimeError::UnboundVariable { name: program.reg_name(r) }),
        })
    }

    fn check_bounds<B: VmBufs>(buf: BufId, idx: i64, bufs: &B) -> Result<(), RuntimeError> {
        let len = bufs.get(buf).len();
        if idx < 0 || idx as usize >= len {
            return Err(RuntimeError::OutOfBounds {
                buffer: bufs.name(buf).to_string(),
                index: idx,
                len,
            });
        }
        Ok(())
    }

    /// Execute a compiled program against the given buffers.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on out-of-bounds accesses, type errors, or
    /// when the step budget is exceeded — the same faults, in the same
    /// order, as the tree-walking interpreter.
    pub fn run(&mut self, program: &Program, bufs: &mut BufferSet) -> Result<(), RuntimeError> {
        self.run_span(program, bufs, 0, program.code().len()).map(|_| ())
    }

    /// Execute instructions starting at `start` until the pc leaves
    /// `[start, stop)` — either by reaching `stop` (the common fallthrough)
    /// or by a jump past it — and return the final pc.  The parallel
    /// runtime (`crate::par`) drives a program region-by-region with this;
    /// `stop = code.len()` recovers a full [`Vm::run`].
    ///
    /// # Errors
    ///
    /// Exactly those of [`Vm::run`].
    pub(crate) fn run_span<B: VmBufs>(
        &mut self,
        program: &Program,
        bufs: &mut B,
        start: usize,
        stop: usize,
    ) -> Result<usize, RuntimeError> {
        self.apply_pretags(program);
        self.dispatch::<false, B>(program, bufs, &mut [], start, stop)
    }

    /// Execute the program while counting how many times each instruction
    /// (by its absolute pc) was dispatched.  The returned vector is
    /// indexed by pc; the benchmark harness uses it to compute the
    /// executed-typed-instruction fraction and the per-opcode histogram.
    /// Semantics and [`ExecStats`] are identical to [`Vm::run`] — only
    /// the (untimed) bookkeeping differs.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Vm::run`].
    pub fn run_profiled(
        &mut self,
        program: &Program,
        bufs: &mut BufferSet,
    ) -> Result<Vec<u64>, RuntimeError> {
        let mut counts = vec![0u64; program.code().len()];
        self.apply_pretags(program);
        self.dispatch::<true, BufferSet>(program, bufs, &mut counts, 0, program.code().len())?;
        Ok(counts)
    }

    /// Pin the tags of statically-typed registers ([`Program::pretags`])
    /// so the typed instructions can skip tag maintenance entirely while
    /// generic instructions reading those registers still observe a
    /// correct tag.  Sound because the typing pass only pretags registers
    /// that are written with this one type on every path and never read
    /// while possibly unset.
    fn apply_pretags(&mut self, program: &Program) {
        for &(r, t) in program.pretags() {
            self.tags[r.index()] = match t {
                LaneTag::Int => Tag::Int,
                LaneTag::Float => Tag::Float,
                LaneTag::Bool => Tag::Bool,
            };
        }
    }

    /// The dispatch loop, monomorphised over whether per-pc execution
    /// counts are collected (so the hot non-profiled path pays nothing)
    /// and over the buffer view (the plain [`BufferSet`], or the sharded
    /// view the parallel runtime substitutes).  Runs over the span
    /// `[start, stop)` and returns the pc at which control left it.
    fn dispatch<const PROFILE: bool, B: VmBufs>(
        &mut self,
        program: &Program,
        bufs: &mut B,
        counts: &mut [u64],
        start: usize,
        stop: usize,
    ) -> Result<usize, RuntimeError> {
        let code = program.code();
        let mut pc = start;
        while pc < stop {
            let instr = &code[pc];
            if PROFILE {
                counts[pc] += 1;
            }
            match *instr {
                Instr::BumpStmt => {
                    self.stats.stmts += 1;
                    if let Some(budget) = self.step_budget {
                        if self.stats.stmts > budget {
                            return Err(RuntimeError::StepBudgetExceeded { budget });
                        }
                    }
                    if let Some(watch) = &self.watch {
                        watch.check(self.stats.stmts)?;
                    }
                    pc += 1;
                }
                Instr::Const { dst, cidx } => {
                    self.set(dst, program.consts()[cidx as usize]);
                    pc += 1;
                }
                Instr::Mov { dst, src } => {
                    let (d, s) = (dst.index(), src.index());
                    if self.tags[s] == Tag::Unset {
                        return Err(RuntimeError::UnboundVariable { name: program.reg_name(src) });
                    }
                    self.tags[d] = self.tags[s];
                    self.ints[d] = self.ints[s];
                    self.floats[d] = self.floats[s];
                    self.bools[d] = self.bools[s];
                    pc += 1;
                }
                Instr::BufLen { dst, buf } => {
                    self.set_int(dst, bufs.get(buf).len() as i64);
                    pc += 1;
                }
                Instr::Load { dst, buf, idx } => {
                    let v = self.load_value(buf, idx, program, bufs)?;
                    self.set(dst, v);
                    pc += 1;
                }
                Instr::CoerceInt { reg } => {
                    let i = reg.index();
                    match self.tags[i] {
                        Tag::Int => {}
                        Tag::Bool => {
                            self.ints[i] = self.bools[i] as i64;
                            self.tags[i] = Tag::Int;
                        }
                        Tag::Float if self.floats[i].fract() == 0.0 => {
                            self.ints[i] = self.floats[i] as i64;
                            self.tags[i] = Tag::Int;
                        }
                        Tag::Float => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "integer",
                                found: ValueKind::Float,
                            })
                        }
                        Tag::Missing => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "integer",
                                found: ValueKind::Missing,
                            })
                        }
                        Tag::Unset => {
                            return Err(RuntimeError::UnboundVariable {
                                name: program.reg_name(reg),
                            })
                        }
                    }
                    pc += 1;
                }
                Instr::Store { buf, idx, val, reduce } => {
                    let at = self.ints[idx.index()];
                    Self::check_bounds(buf, at, bufs)?;
                    self.stats.stores += 1;
                    let vi = val.index();
                    // Fast path: float value into a float buffer under an
                    // arithmetic reduction — the common accumulator shape.
                    let arith = matches!(
                        reduce,
                        None | Some(
                            BinOp::Add
                                | BinOp::Sub
                                | BinOp::Mul
                                | BinOp::Div
                                | BinOp::Min
                                | BinOp::Max
                        )
                    );
                    if self.tags[vi] == Tag::Float && arith {
                        if let Buffer::F64(data) = bufs.get_mut(buf) {
                            let x = self.floats[vi];
                            let slot = &mut data[at as usize];
                            match reduce {
                                None => *slot = x,
                                Some(op) => *slot = Self::float_arith(op, *slot, x),
                            }
                            pc += 1;
                            continue;
                        }
                    }
                    let v = self.value(val, program)?;
                    bufs.get_mut(buf).store(at as usize, v, reduce)?;
                    pc += 1;
                }
                Instr::Append { buf, val } => {
                    self.stats.stores += 1;
                    self.alloc.charge(1)?;
                    let vi = val.index();
                    // Fast paths for the two lane types sparse assembly
                    // appends (coordinates and values); everything else
                    // defers to the boxed push for identical semantics.
                    match (self.tags[vi], bufs.get_mut(buf)) {
                        (Tag::Int, Buffer::I64(data)) => data.push(self.ints[vi]),
                        (Tag::Float, Buffer::F64(data)) => data.push(self.floats[vi]),
                        (_, other) => {
                            let v = self.value(val, program)?;
                            other.push(v)?;
                        }
                    }
                    pc += 1;
                }
                Instr::FiberEnd { pos, data } => {
                    self.stats.stores += 1;
                    self.alloc.charge(1)?;
                    let end = bufs.get(data).len() as i64;
                    bufs.get_mut(pos).push(Value::Int(end))?;
                    pc += 1;
                }
                Instr::Unary { op, dst, src } => {
                    let a = self.value(src, program)?;
                    self.set(dst, Value::unop(op, a)?);
                    pc += 1;
                }
                Instr::Binary { op, dst, lhs, rhs } => {
                    self.binary(op, dst, lhs, rhs, program)?;
                    pc += 1;
                }
                Instr::Jump { target } => pc = target as usize,
                Instr::JumpIfFalse { src, target, strict } => {
                    match self.truthy(src, program)? {
                        Some(true) => pc += 1,
                        Some(false) => pc = target as usize,
                        // A missing condition selects the else branch
                        // (coalesce-style defaulting), unless the construct
                        // demands a real boolean.
                        None if strict => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "bool",
                                found: ValueKind::Missing,
                            })
                        }
                        None => pc = target as usize,
                    }
                }
                Instr::JumpIfTrue { src, target } => match self.truthy(src, program)? {
                    Some(true) => pc = target as usize,
                    _ => pc += 1,
                },
                Instr::JumpIfMissing { src, target } => {
                    if self.tags[src.index()] == Tag::Missing {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                Instr::JumpIfNotMissing { src, target } => {
                    if self.tags[src.index()] == Tag::Missing {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                Instr::WhileTest { cond, end } => match self.truthy(cond, program)? {
                    Some(true) => {
                        self.stats.loop_iters += 1;
                        pc += 1;
                    }
                    Some(false) => pc = end as usize,
                    None => {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "bool",
                            found: ValueKind::Missing,
                        })
                    }
                },
                Instr::ForTest { counter, hi, var, end } => {
                    let i = self.ints[counter.index()];
                    if i <= self.ints[hi.index()] {
                        self.stats.loop_iters += 1;
                        self.set_int(var, i);
                        pc += 1;
                    } else {
                        pc = end as usize;
                    }
                }
                Instr::ForStep { counter, test } => {
                    self.ints[counter.index()] = self.ints[counter.index()].wrapping_add(1);
                    pc = test as usize;
                }
                Instr::Seek { dst, buf, lo, hi, key, on_abs } => {
                    let lo = self.ints[lo.index()];
                    let hi = self.ints[hi.index()];
                    let key = self.ints[key.index()];
                    self.stats.searches += 1;
                    let pos = self.binary_search(buf, lo, hi, key, on_abs, bufs)?;
                    self.set_int(dst, pos);
                    pc += 1;
                }
                Instr::BinaryImm { op, dst, lhs, cidx } => {
                    let imm = program.consts()[cidx as usize];
                    self.binary_imm(op, dst, lhs, imm, program)?;
                    pc += 1;
                }
                Instr::LoadBinary { op, dst, lhs, buf, idx } => {
                    // The load half first, with the exact semantics (and
                    // error order) of a standalone `Load`.
                    let loaded = self.load_value(buf, idx, program, bufs)?;
                    self.binary_imm(op, dst, lhs, loaded, program)?;
                    pc += 1;
                }
                Instr::CmpBranch { op, lhs, rhs, target, strict } => {
                    match self.compare(op, lhs, rhs, program)? {
                        Some(true) => pc += 1,
                        Some(false) => pc = target as usize,
                        None if strict => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "bool",
                                found: ValueKind::Missing,
                            })
                        }
                        None => pc = target as usize,
                    }
                }
                Instr::CmpBranchImm { op, lhs, cidx, target, strict } => {
                    let imm = program.consts()[cidx as usize];
                    match self.compare_imm(op, lhs, imm, program)? {
                        Some(true) => pc += 1,
                        Some(false) => pc = target as usize,
                        None if strict => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "bool",
                                found: ValueKind::Missing,
                            })
                        }
                        None => pc = target as usize,
                    }
                }
                Instr::WhileCmp { op, lhs, rhs, end } => {
                    match self.compare(op, lhs, rhs, program)? {
                        Some(true) => {
                            self.stats.loop_iters += 1;
                            pc += 1;
                        }
                        Some(false) => pc = end as usize,
                        None => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "bool",
                                found: ValueKind::Missing,
                            })
                        }
                    }
                }
                Instr::WhileCmpImm { op, lhs, cidx, end } => {
                    let imm = program.consts()[cidx as usize];
                    match self.compare_imm(op, lhs, imm, program)? {
                        Some(true) => {
                            self.stats.loop_iters += 1;
                            pc += 1;
                        }
                        Some(false) => pc = end as usize,
                        None => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "bool",
                                found: ValueKind::Missing,
                            })
                        }
                    }
                }

                // ---- Monomorphic typed instructions: unboxed lanes, no
                // ---- tag reads or writes (register tags are pinned by
                // ---- `apply_pretags`), identical ExecStats.
                Instr::Nop => pc += 1,
                Instr::ConstI { dst, imm } => {
                    self.ints[dst.index()] = imm;
                    pc += 1;
                }
                Instr::ConstF { dst, imm } => {
                    self.floats[dst.index()] = imm;
                    pc += 1;
                }
                Instr::IMov { dst, src } => {
                    self.ints[dst.index()] = self.ints[src.index()];
                    pc += 1;
                }
                Instr::FMov { dst, src } => {
                    self.floats[dst.index()] = self.floats[src.index()];
                    pc += 1;
                }
                Instr::ILen { dst, buf } => {
                    self.ints[dst.index()] = bufs.get(buf).len() as i64;
                    pc += 1;
                }
                Instr::LoadI64 { dst, buf, idx } => {
                    let at = self.ints[idx.index()];
                    match bufs.get(buf) {
                        Buffer::I64(data) if at >= 0 && (at as usize) < data.len() => {
                            self.stats.loads += 1;
                            self.ints[dst.index()] = data[at as usize];
                        }
                        _ => {
                            Self::check_bounds(buf, at, bufs)?;
                            // Kind drift (a rebound buffer): generic load.
                            let v = self.load_value(buf, idx, program, bufs)?;
                            self.set(dst, v);
                        }
                    }
                    pc += 1;
                }
                Instr::LoadF64 { dst, buf, idx } => {
                    let at = self.ints[idx.index()];
                    match bufs.get(buf) {
                        Buffer::F64(data) if at >= 0 && (at as usize) < data.len() => {
                            self.stats.loads += 1;
                            self.floats[dst.index()] = data[at as usize];
                        }
                        _ => {
                            Self::check_bounds(buf, at, bufs)?;
                            let v = self.load_value(buf, idx, program, bufs)?;
                            self.set(dst, v);
                        }
                    }
                    pc += 1;
                }
                Instr::LoadU8 { dst, buf, idx } => {
                    let at = self.ints[idx.index()];
                    match bufs.get(buf) {
                        Buffer::U8(data) if at >= 0 && (at as usize) < data.len() => {
                            self.stats.loads += 1;
                            self.floats[dst.index()] = data[at as usize] as f64;
                        }
                        _ => {
                            Self::check_bounds(buf, at, bufs)?;
                            let v = self.load_value(buf, idx, program, bufs)?;
                            self.set(dst, v);
                        }
                    }
                    pc += 1;
                }
                Instr::FMulLoad { dst, lhs, buf, idx } => {
                    let at = self.ints[idx.index()];
                    match bufs.get(buf) {
                        Buffer::F64(data) if at >= 0 && (at as usize) < data.len() => {
                            self.stats.loads += 1;
                            self.floats[dst.index()] = self.floats[lhs.index()] * data[at as usize];
                        }
                        _ => {
                            let loaded = self.load_value(buf, idx, program, bufs)?;
                            self.binary_imm(BinOp::Mul, dst, lhs, loaded, program)?;
                        }
                    }
                    pc += 1;
                }
                Instr::StoreF64 { buf, idx, val, reduce } => {
                    let at = self.ints[idx.index()];
                    Self::check_bounds(buf, at, bufs)?;
                    self.stats.stores += 1;
                    let x = self.floats[val.index()];
                    if let Buffer::F64(data) = bufs.get_mut(buf) {
                        let slot = &mut data[at as usize];
                        match reduce {
                            None => *slot = x,
                            Some(op) => *slot = Self::float_arith(op, *slot, x),
                        }
                    } else {
                        // Kind drift: fall back to the boxed store.
                        bufs.get_mut(buf).store(at as usize, Value::Float(x), reduce)?;
                    }
                    pc += 1;
                }
                Instr::StoreU8 { buf, idx, val, reduce } => {
                    let at = self.ints[idx.index()];
                    Self::check_bounds(buf, at, bufs)?;
                    self.stats.stores += 1;
                    let x = self.floats[val.index()];
                    if let Buffer::U8(data) = bufs.get_mut(buf) {
                        let slot = &mut data[at as usize];
                        // Reductions combine in f64 against the loaded
                        // element, then clamp-round — exactly
                        // `Buffer::store` on a float value.
                        let combined = match reduce {
                            None => x,
                            Some(op) => Self::float_arith(op, *slot as f64, x),
                        };
                        *slot = combined.clamp(0.0, 255.0).round() as u8;
                    } else {
                        bufs.get_mut(buf).store(at as usize, Value::Float(x), reduce)?;
                    }
                    pc += 1;
                }
                Instr::IAppend { buf, val } => {
                    self.stats.stores += 1;
                    self.alloc.charge(1)?;
                    let x = self.ints[val.index()];
                    match bufs.get_mut(buf) {
                        Buffer::I64(data) => data.push(x),
                        other => other.push(Value::Int(x))?,
                    }
                    pc += 1;
                }
                Instr::FAppend { buf, val } => {
                    self.stats.stores += 1;
                    self.alloc.charge(1)?;
                    let x = self.floats[val.index()];
                    match bufs.get_mut(buf) {
                        Buffer::F64(data) => data.push(x),
                        other => other.push(Value::Float(x))?,
                    }
                    pc += 1;
                }
                Instr::IArith { op, dst, lhs, rhs } => {
                    let (x, y) = (self.ints[lhs.index()], self.ints[rhs.index()]);
                    self.ints[dst.index()] = Self::int_arith(op, x, y);
                    pc += 1;
                }
                Instr::FArith { op, dst, lhs, rhs } => {
                    let (x, y) = (self.floats[lhs.index()], self.floats[rhs.index()]);
                    self.floats[dst.index()] = Self::float_arith(op, x, y);
                    pc += 1;
                }
                Instr::IArithImm { op, dst, lhs, imm } => {
                    let x = self.ints[lhs.index()];
                    self.ints[dst.index()] = Self::int_arith(op, x, imm);
                    pc += 1;
                }
                Instr::FArithImm { op, dst, lhs, imm } => {
                    let x = self.floats[lhs.index()];
                    self.floats[dst.index()] = Self::float_arith(op, x, imm);
                    pc += 1;
                }
                Instr::FRound { dst, src } => {
                    // Exactly `Value::unop(UnOp::Round, _)` on a float.
                    self.floats[dst.index()] = self.floats[src.index()].round().clamp(0.0, 255.0);
                    pc += 1;
                }
                Instr::ICmpBranch { op, lhs, rhs, target } => {
                    if Self::cmp_int(op, self.ints[lhs.index()], self.ints[rhs.index()]) {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                Instr::ICmpBranchImm { op, lhs, imm, target } => {
                    if Self::cmp_int(op, self.ints[lhs.index()], imm) {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                Instr::FCmpBranch { op, lhs, rhs, target } => {
                    if Self::cmp_f64(op, self.floats[lhs.index()], self.floats[rhs.index()]) {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                Instr::FCmpBranchImm { op, lhs, imm, target } => {
                    if Self::cmp_f64(op, self.floats[lhs.index()], imm) {
                        pc += 1;
                    } else {
                        pc = target as usize;
                    }
                }
                Instr::IWhileCmp { op, lhs, rhs, end } => {
                    if Self::cmp_int(op, self.ints[lhs.index()], self.ints[rhs.index()]) {
                        self.stats.loop_iters += 1;
                        pc += 1;
                    } else {
                        pc = end as usize;
                    }
                }
                Instr::IWhileCmpImm { op, lhs, imm, end } => {
                    if Self::cmp_int(op, self.ints[lhs.index()], imm) {
                        self.stats.loop_iters += 1;
                        pc += 1;
                    } else {
                        pc = end as usize;
                    }
                }
                Instr::FWhileCmp { op, lhs, rhs, end } => {
                    if Self::cmp_f64(op, self.floats[lhs.index()], self.floats[rhs.index()]) {
                        self.stats.loop_iters += 1;
                        pc += 1;
                    } else {
                        pc = end as usize;
                    }
                }
                Instr::IForTest { counter, hi, var, end } => {
                    let i = self.ints[counter.index()];
                    if i <= self.ints[hi.index()] {
                        self.stats.loop_iters += 1;
                        self.ints[var.index()] = i;
                        pc += 1;
                    } else {
                        pc = end as usize;
                    }
                }
                Instr::ISeek { dst, buf, lo, hi, key, on_abs } => {
                    let lo = self.ints[lo.index()];
                    let hi = self.ints[hi.index()];
                    let key = self.ints[key.index()];
                    self.stats.searches += 1;
                    let pos = self.binary_search(buf, lo, hi, key, on_abs, bufs)?;
                    self.ints[dst.index()] = pos;
                    pc += 1;
                }

                // ---- Vectorized kernel ops: each sits immediately before
                // ---- an `IForTest` head and executes all but the last of
                // ---- that loop's iterations over whole slices, then
                // ---- advances the counter.  On any failed precondition
                // ---- the op does *nothing* and the scalar loop runs every
                // ---- iteration, so none of these can fault.
                Instr::VFillStoreF64 { buf, base, imm, counter, hi, cost, lanes } => {
                    self.v_fill(bufs, buf, base, imm, counter, hi, cost, lanes);
                    pc += 1;
                }
                Instr::VMapF64 {
                    dst,
                    dst_base,
                    reduce,
                    round,
                    a,
                    a_base,
                    a_pre,
                    rhs,
                    counter,
                    hi,
                    cost,
                    lanes,
                } => {
                    self.v_map(
                        bufs,
                        VMapArgs { dst, dst_base, reduce, round, a, a_base, a_pre, rhs },
                        counter,
                        hi,
                        cost,
                        lanes,
                    );
                    pc += 1;
                }
                Instr::VMulAddF64 {
                    acc,
                    acc_idx,
                    a,
                    a_base,
                    b,
                    b_base,
                    op,
                    counter,
                    hi,
                    cost,
                    ..
                } => {
                    self.v_mul_add(
                        bufs,
                        acc,
                        acc_idx,
                        (a, a_base),
                        (b, b_base),
                        op,
                        counter,
                        hi,
                        cost,
                    );
                    pc += 1;
                }
                Instr::VReduceF64 {
                    acc, acc_idx, src, base, pre, op, counter, hi, cost, ..
                } => {
                    self.v_reduce(bufs, acc, acc_idx, src, base, pre, op, counter, hi, cost);
                    pc += 1;
                }
                Instr::VAppendRangeF64 {
                    idx_out,
                    val_out,
                    src,
                    base,
                    guard,
                    counter,
                    hi,
                    cost,
                    pass_cost,
                    ..
                } => {
                    self.v_append_range(
                        bufs, idx_out, val_out, src, base, guard, counter, hi, cost, pass_cost,
                    );
                    pc += 1;
                }
                Instr::VCmpSelectU8 {
                    dst,
                    dst_base,
                    src,
                    src_base,
                    cmp,
                    cmp_imm,
                    set,
                    counter,
                    hi,
                    cost,
                    pass_cost,
                    ..
                } => {
                    self.v_cmp_select(
                        bufs,
                        (dst, dst_base),
                        (src, src_base),
                        cmp,
                        cmp_imm,
                        set,
                        counter,
                        hi,
                        cost,
                        pass_cost,
                    );
                    pc += 1;
                }
            }
        }
        Ok(pc)
    }

    /// The infallible integer arithmetic subset the typed [`Instr::IArith`]
    /// forms execute — exactly [`Vm::int_binop`]'s arms for these ops.
    /// `pub(crate)` so the parallel runtime combines shard-partial integer
    /// reductions with the identical operator bodies.
    #[inline]
    pub(crate) fn int_arith(op: BinOp, x: i64, y: i64) -> i64 {
        match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            other => unreachable!("{other:?} is not a typed int arithmetic op"),
        }
    }

    /// The float arithmetic subset the typed [`Instr::FArith`] forms
    /// execute — exactly [`Vm::float_binop`]'s arms for these ops.
    #[inline]
    fn float_arith(op: BinOp, x: f64, y: f64) -> f64 {
        match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            other => unreachable!("{other:?} is not a typed float arithmetic op"),
        }
    }

    /// The single implementation of load semantics, shared by
    /// [`Instr::Load`] and the load half of [`Instr::LoadBinary`]: a
    /// missing index yields missing without counting a load (paper §8,
    /// `permit`); otherwise the index is coerced, bounds are checked, and
    /// one load is counted.
    #[inline]
    fn load_value<B: VmBufs>(
        &mut self,
        buf: BufId,
        idx: Reg,
        program: &Program,
        bufs: &B,
    ) -> Result<Value, RuntimeError> {
        let i = idx.index();
        match self.tags[i] {
            Tag::Missing => return Ok(Value::Missing),
            Tag::Unset => {
                return Err(RuntimeError::UnboundVariable { name: program.reg_name(idx) })
            }
            _ => {}
        }
        let at = if self.tags[i] == Tag::Int {
            self.ints[i]
        } else {
            self.value(idx, program)?.as_int()?
        };
        Self::check_bounds(buf, at, bufs)?;
        self.stats.loads += 1;
        Ok(match bufs.get(buf) {
            Buffer::I64(v) => Value::Int(v[at as usize]),
            Buffer::F64(v) => Value::Float(v[at as usize]),
            Buffer::U8(v) => Value::Float(v[at as usize] as f64),
            Buffer::Bool(v) => Value::Bool(v[at as usize]),
        })
    }

    /// `dst = lhs op imm` with the same unboxed fast paths and fallback as
    /// [`Vm::binary`] — the register/immediate form used by
    /// [`Instr::BinaryImm`] and the load half of [`Instr::LoadBinary`].
    /// Shares the operator bodies ([`Vm::int_binop`]/[`Vm::float_binop`])
    /// with the register/register form so fused and unfused execution
    /// cannot drift apart.
    #[inline]
    fn binary_imm(
        &mut self,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        imm: Value,
        program: &Program,
    ) -> Result<(), RuntimeError> {
        let li = lhs.index();
        match (self.tags[li], imm) {
            (Tag::Int, Value::Int(y)) => {
                let c = Self::int_binop(op, self.ints[li], y)?;
                self.set_computed(dst, c);
            }
            (Tag::Float, Value::Float(y)) => {
                let c = Self::float_binop(op, self.floats[li], y);
                self.set_computed(dst, c);
            }
            _ => {
                let a = self.value(lhs, program)?;
                self.set(dst, Value::binop(op, a, imm)?);
            }
        }
        Ok(())
    }

    #[inline]
    fn set_computed(&mut self, dst: Reg, c: Computed) {
        match c {
            Computed::Int(x) => self.set_int(dst, x),
            Computed::Float(x) => self.set_float(dst, x),
            Computed::Bool(b) => self.set_bool(dst, b),
        }
    }

    /// The int/int fast path shared by [`Vm::binary`] and
    /// [`Vm::binary_imm`]: integer arithmetic with wrapping, equality on
    /// the integers, ordering through f64 — exactly [`Value::binop`].
    #[inline]
    fn int_binop(op: BinOp, x: i64, y: i64) -> Result<Computed, RuntimeError> {
        use BinOp::*;
        Ok(match op {
            Add => Computed::Int(x.wrapping_add(y)),
            Sub => Computed::Int(x.wrapping_sub(y)),
            Mul => Computed::Int(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Computed::Int(x / y)
            }
            Min => Computed::Int(x.min(y)),
            Max => Computed::Int(x.max(y)),
            Eq | Ne | Lt | Le | Gt | Ge => Computed::Bool(Self::cmp_int(op, x, y)),
            And => Computed::Bool(x != 0 && y != 0),
            Or => Computed::Bool(x != 0 || y != 0),
        })
    }

    /// The float/float fast path shared by [`Vm::binary`] and
    /// [`Vm::binary_imm`], exactly [`Value::binop`]'s float arm.
    #[inline]
    fn float_binop(op: BinOp, x: f64, y: f64) -> Computed {
        use BinOp::*;
        match op {
            Add => Computed::Float(x + y),
            Sub => Computed::Float(x - y),
            Mul => Computed::Float(x * y),
            Div => Computed::Float(x / y),
            Min => Computed::Float(x.min(y)),
            Max => Computed::Float(x.max(y)),
            Eq | Ne | Lt | Le | Gt | Ge => Computed::Bool(Self::cmp_f64(op, x, y)),
            And => Computed::Bool(x != 0.0 && y != 0.0),
            Or => Computed::Bool(x != 0.0 || y != 0.0),
        }
    }

    /// Evaluate a fused comparison to `Some(bool)`, or `None` when the
    /// result is missing — exactly the truthiness the unfused
    /// `Binary` + `JumpIfFalse`/`WhileTest` pair would observe.
    #[inline]
    fn compare(
        &mut self,
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
        program: &Program,
    ) -> Result<Option<bool>, RuntimeError> {
        let (li, ri) = (lhs.index(), rhs.index());
        match (self.tags[li], self.tags[ri]) {
            (Tag::Int, Tag::Int) => Ok(Some(Self::cmp_int(op, self.ints[li], self.ints[ri]))),
            (Tag::Float, Tag::Float) => {
                Ok(Some(Self::cmp_f64(op, self.floats[li], self.floats[ri])))
            }
            _ => {
                let a = self.value(lhs, program)?;
                let b = self.value(rhs, program)?;
                match Value::binop(op, a, b)? {
                    Value::Bool(r) => Ok(Some(r)),
                    Value::Missing => Ok(None),
                    other => unreachable!("comparison produced {other:?}"),
                }
            }
        }
    }

    /// Register/immediate variant of [`Vm::compare`].
    #[inline]
    fn compare_imm(
        &mut self,
        op: BinOp,
        lhs: Reg,
        imm: Value,
        program: &Program,
    ) -> Result<Option<bool>, RuntimeError> {
        let li = lhs.index();
        match (self.tags[li], imm) {
            (Tag::Int, Value::Int(y)) => Ok(Some(Self::cmp_int(op, self.ints[li], y))),
            (Tag::Float, Value::Float(y)) => Ok(Some(Self::cmp_f64(op, self.floats[li], y))),
            _ => {
                let a = self.value(lhs, program)?;
                match Value::binop(op, a, imm)? {
                    Value::Bool(r) => Ok(Some(r)),
                    Value::Missing => Ok(None),
                    other => unreachable!("comparison produced {other:?}"),
                }
            }
        }
    }

    /// Comparison through f64, exactly like [`Value::binop`] (and the
    /// unfused float fast path).
    #[inline]
    fn cmp_f64(op: BinOp, x: f64, y: f64) -> bool {
        match op {
            BinOp::Eq => x == y,
            BinOp::Ne => x != y,
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            other => unreachable!("{other:?} is not a comparison"),
        }
    }

    /// Int/int comparison, exactly like the unfused int fast path:
    /// equality on the integers, ordering through f64 (mirroring
    /// [`Value::binop`]).
    #[inline]
    fn cmp_int(op: BinOp, x: i64, y: i64) -> bool {
        match op {
            BinOp::Eq => x == y,
            BinOp::Ne => x != y,
            _ => Self::cmp_f64(op, x as f64, y as f64),
        }
    }

    /// `dst = lhs op rhs` with unboxed fast paths for the int/int and
    /// float/float cases; every other combination defers to [`Value::binop`]
    /// so the semantics (promotion, missing propagation, truthiness) stay
    /// byte-for-byte those of the tree-walker.
    #[inline]
    fn binary(
        &mut self,
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
        program: &Program,
    ) -> Result<(), RuntimeError> {
        let (li, ri) = (lhs.index(), rhs.index());
        match (self.tags[li], self.tags[ri]) {
            (Tag::Int, Tag::Int) => {
                let c = Self::int_binop(op, self.ints[li], self.ints[ri])?;
                self.set_computed(dst, c);
            }
            (Tag::Float, Tag::Float) => {
                let c = Self::float_binop(op, self.floats[li], self.floats[ri]);
                self.set_computed(dst, c);
            }
            _ => {
                let a = self.value(lhs, program)?;
                let b = self.value(rhs, program)?;
                self.set(dst, Value::binop(op, a, b)?);
            }
        }
        Ok(())
    }

    /// Lower-bound search over `buf[lo..=hi]`, identical to the
    /// interpreter's: the shared galloping search ([`crate::seek`]), one
    /// bounds check and one counted load per probe.
    fn binary_search<B: VmBufs>(
        &mut self,
        buf: BufId,
        lo: i64,
        hi: i64,
        key: i64,
        on_abs: bool,
        bufs: &B,
    ) -> Result<i64, RuntimeError> {
        let (pos, probes) = crate::seek::lower_bound(bufs, buf, lo, hi, key, on_abs)?;
        self.stats.loads += probes;
        Ok(pos)
    }

    // -----------------------------------------------------------------
    // Vectorized kernel-op execution.  Shared contract: read the loop
    // bounds, check every precondition (trip count, step budget, buffer
    // kinds, full-slice bounds, aliasing) *before* touching any state;
    // on failure return without doing anything — the scalar loop that
    // follows is the fallback.  On success execute iterations
    // `[lo, hi)` over slices, bump `ExecStats` by the scalar-equivalent
    // per-iteration cost, and advance the counter to `hi` so the scalar
    // loop runs exactly the final iteration (which restores every
    // temporary register and doubles as the remainder handler).
    // -----------------------------------------------------------------

    /// Minimum bulk trip count worth taking: below this, the bulk path's
    /// precondition checks and slice setup cost more than the per-element
    /// dispatch it saves (short trips dominate the merge-driven kernels,
    /// e.g. galloped intersections and variable-block formats), so the op
    /// declines and the scalar loop runs the whole trip.
    const VMIN_TRIP: i64 = 8;

    /// Bulk trip count `hi - lo` when enough bulk iterations remain to
    /// amortize the setup (plus the scalar-loop final iteration).
    #[inline]
    fn vbulk_iters(lo: i64, hiv: i64) -> Option<u64> {
        if hiv.checked_sub(lo).is_some_and(|n| n >= Self::VMIN_TRIP) {
            Some(hiv.wrapping_sub(lo) as u64)
        } else {
            None
        }
    }

    /// Whether the bulk's statement count provably fits under the step
    /// budget.  When it might not, the op backs off so the scalar loop
    /// faults (or not) at exactly the scalar point.
    #[inline]
    fn vbudget_ok(&self, n: u64, stmts_per_iter: u64) -> bool {
        match self.step_budget {
            None => true,
            Some(budget) => n
                .checked_mul(stmts_per_iter)
                .and_then(|s| self.stats.stmts.checked_add(s))
                .is_some_and(|total| total <= budget),
        }
    }

    /// The loop-invariant element offset of an index shape, computed in
    /// `i128` so overflow anywhere simply fails the span check below.
    #[inline]
    fn vbase_off(&self, base: VBase) -> i128 {
        match base {
            VBase::Var => 0,
            VBase::Scaled { reg, stride } => self.ints[reg.index()] as i128 * stride as i128,
        }
    }

    /// The in-bounds element range `[off+lo, off+hi)` of an F64 buffer,
    /// or `None` when the buffer has another kind or any index of the
    /// bulk would be out of bounds.
    #[inline]
    fn vf64_span<B: VmBufs>(
        bufs: &B,
        buf: BufId,
        off: i128,
        lo: i64,
        hiv: i64,
    ) -> Option<std::ops::Range<usize>> {
        match bufs.get(buf) {
            Buffer::F64(d) => vspan(off, lo, hiv, d.len()),
            _ => None,
        }
    }

    /// Bump the work counters by `n` iterations of `cost` (the
    /// scalar-equivalent accounting; `loop_iters` is bumped separately).
    #[inline]
    fn vbump(&mut self, n: u64, cost: VCost) {
        self.stats.stmts += n * cost.stmts as u64;
        self.stats.loads += n * cost.loads as u64;
        self.stats.stores += n * cost.stores as u64;
    }

    /// A loaded operand's pre-scale, preserving the scalar body's
    /// operand orientation bit-for-bit.
    #[inline]
    fn vscale(pre: VScale, x: f64) -> f64 {
        match pre {
            VScale::None => x,
            VScale::Left { op, imm } => Self::float_arith(op, imm, x),
            VScale::Right { op, imm } => Self::float_arith(op, x, imm),
        }
    }

    /// The optional rounding tail of a vector map — round then clamp,
    /// exactly [`Instr::FRound`].
    #[inline]
    fn vpost(round: bool, x: f64) -> f64 {
        if round {
            x.round().clamp(0.0, 255.0)
        } else {
            x
        }
    }

    /// [`Instr::VFillStoreF64`]: `buf[base + v] = imm` for the bulk.
    #[allow(clippy::too_many_arguments)]
    fn v_fill<B: VmBufs>(
        &mut self,
        bufs: &mut B,
        buf: BufId,
        base: VBase,
        imm: f64,
        counter: Reg,
        hi: Reg,
        cost: VCost,
        lanes: u8,
    ) {
        let (lo, hiv) = (self.ints[counter.index()], self.ints[hi.index()]);
        let Some(n) = Self::vbulk_iters(lo, hiv) else { return };
        if !self.vbudget_ok(n, cost.stmts as u64) {
            return;
        }
        let off = self.vbase_off(base);
        let Buffer::F64(data) = bufs.get_mut(buf) else { return };
        let Some(span) = vspan(off, lo, hiv, data.len()) else { return };
        vfill_f64(&mut data[span], imm, lanes);
        self.stats.loop_iters += n;
        self.vbump(n, cost);
        self.ints[counter.index()] = hiv;
    }

    /// [`Instr::VMapF64`]: `dst[..] reduce= post(pre(a[..]) rhs)` for the
    /// bulk.  The destination is lifted out of the set for the duration
    /// so the sources can be read while it is written (it aliases
    /// neither source — checked; the two sources may alias each other).
    fn v_map<B: VmBufs>(
        &mut self,
        bufs: &mut B,
        m: VMapArgs,
        counter: Reg,
        hi: Reg,
        cost: VCost,
        lanes: u8,
    ) {
        let (lo, hiv) = (self.ints[counter.index()], self.ints[hi.index()]);
        let Some(n) = Self::vbulk_iters(lo, hiv) else { return };
        if !self.vbudget_ok(n, cost.stmts as u64) || m.dst == m.a {
            return;
        }
        let Some(dspan) = Self::vf64_span(bufs, m.dst, self.vbase_off(m.dst_base), lo, hiv) else {
            return;
        };
        let Some(aspan) = Self::vf64_span(bufs, m.a, self.vbase_off(m.a_base), lo, hiv) else {
            return;
        };
        let bspan = match m.rhs {
            VRhs::Buf { buf, base, .. } => {
                if m.dst == buf {
                    return;
                }
                match Self::vf64_span(bufs, buf, self.vbase_off(base), lo, hiv) {
                    Some(s) => Some(s),
                    None => return,
                }
            }
            _ => None,
        };
        let mut lifted = std::mem::replace(bufs.get_mut(m.dst), Buffer::F64(Vec::new().into()));
        {
            let Buffer::F64(ddata) = &mut lifted else { unreachable!() };
            let Buffer::F64(adata) = bufs.get(m.a) else { unreachable!() };
            let dslice = &mut ddata[dspan];
            let aslice = &adata[aspan];
            let (a_pre, round, reduce) = (m.a_pre, m.round, m.reduce);
            match (m.rhs, bspan) {
                (VRhs::None, _) => {
                    vmap2_f64(dslice, aslice, reduce, lanes, |x| {
                        Self::vpost(round, Self::vscale(a_pre, x))
                    });
                }
                (VRhs::Imm { op, imm }, _) => {
                    vmap2_f64(dslice, aslice, reduce, lanes, |x| {
                        Self::vpost(round, Self::float_arith(op, Self::vscale(a_pre, x), imm))
                    });
                }
                (VRhs::Buf { op, buf, pre, .. }, Some(bspan)) => {
                    let Buffer::F64(bdata) = bufs.get(buf) else { unreachable!() };
                    let bslice = &bdata[bspan];
                    vmap3_f64(dslice, aslice, bslice, reduce, lanes, |x, y| {
                        Self::vpost(
                            round,
                            Self::float_arith(op, Self::vscale(a_pre, x), Self::vscale(pre, y)),
                        )
                    });
                }
                (VRhs::Buf { .. }, None) => unreachable!(),
            }
        }
        *bufs.get_mut(m.dst) = lifted;
        self.stats.loop_iters += n;
        self.vbump(n, cost);
        self.ints[counter.index()] = hiv;
    }

    /// [`Instr::VMulAddF64`]: `acc[acc_idx] op= a[..] * b[..]` folded
    /// strictly in order (bit-exact with the scalar loop because the
    /// accumulator aliases neither source — checked; `a` and `b` may be
    /// the same buffer).
    #[allow(clippy::too_many_arguments)]
    fn v_mul_add<B: VmBufs>(
        &mut self,
        bufs: &mut B,
        acc: BufId,
        acc_idx: i64,
        a: (BufId, VBase),
        b: (BufId, VBase),
        op: BinOp,
        counter: Reg,
        hi: Reg,
        cost: VCost,
    ) {
        let (lo, hiv) = (self.ints[counter.index()], self.ints[hi.index()]);
        let Some(n) = Self::vbulk_iters(lo, hiv) else { return };
        if !self.vbudget_ok(n, cost.stmts as u64) || acc == a.0 || acc == b.0 {
            return;
        }
        let Buffer::F64(accd) = bufs.get(acc) else { return };
        if acc_idx < 0 || acc_idx as usize >= accd.len() {
            return;
        }
        let mut t = accd[acc_idx as usize];
        let Some(aspan) = Self::vf64_span(bufs, a.0, self.vbase_off(a.1), lo, hiv) else {
            return;
        };
        let Some(bspan) = Self::vf64_span(bufs, b.0, self.vbase_off(b.1), lo, hiv) else {
            return;
        };
        let (Buffer::F64(adata), Buffer::F64(bdata)) = (bufs.get(a.0), bufs.get(b.0)) else {
            unreachable!()
        };
        for (&x, &y) in adata[aspan].iter().zip(&bdata[bspan]) {
            t = Self::float_arith(op, t, x * y);
        }
        match bufs.get_mut(acc) {
            Buffer::F64(d) => d[acc_idx as usize] = t,
            _ => unreachable!(),
        }
        self.stats.loop_iters += n;
        self.vbump(n, cost);
        self.ints[counter.index()] = hiv;
    }

    /// [`Instr::VReduceF64`]: `acc[acc_idx] op= pre(src[..])` folded
    /// strictly in order.
    #[allow(clippy::too_many_arguments)]
    fn v_reduce<B: VmBufs>(
        &mut self,
        bufs: &mut B,
        acc: BufId,
        acc_idx: i64,
        src: BufId,
        base: VBase,
        pre: VScale,
        op: BinOp,
        counter: Reg,
        hi: Reg,
        cost: VCost,
    ) {
        let (lo, hiv) = (self.ints[counter.index()], self.ints[hi.index()]);
        let Some(n) = Self::vbulk_iters(lo, hiv) else { return };
        if !self.vbudget_ok(n, cost.stmts as u64) || acc == src {
            return;
        }
        let Buffer::F64(accd) = bufs.get(acc) else { return };
        if acc_idx < 0 || acc_idx as usize >= accd.len() {
            return;
        }
        let mut t = accd[acc_idx as usize];
        let Some(span) = Self::vf64_span(bufs, src, self.vbase_off(base), lo, hiv) else {
            return;
        };
        let Buffer::F64(sdata) = bufs.get(src) else { unreachable!() };
        for &x in &sdata[span] {
            t = Self::float_arith(op, t, Self::vscale(pre, x));
        }
        match bufs.get_mut(acc) {
            Buffer::F64(d) => d[acc_idx as usize] = t,
            _ => unreachable!(),
        }
        self.stats.loop_iters += n;
        self.vbump(n, cost);
        self.ints[counter.index()] = hiv;
    }

    /// [`Instr::VAppendRangeF64`]: `idx_out.push(v)` / `val_out.push(
    /// src[base + v])` for each (passing) bulk iteration.
    #[allow(clippy::too_many_arguments)]
    fn v_append_range<B: VmBufs>(
        &mut self,
        bufs: &mut B,
        idx_out: BufId,
        val_out: BufId,
        src: BufId,
        base: VBase,
        guard: Option<(BinOp, f64)>,
        counter: Reg,
        hi: Reg,
        cost: VCost,
        pass_cost: VCost,
    ) {
        let (lo, hiv) = (self.ints[counter.index()], self.ints[hi.index()]);
        let Some(n) = Self::vbulk_iters(lo, hiv) else { return };
        // Worst case every iteration passes the guard.
        if !self.vbudget_ok(n, cost.stmts as u64 + pass_cost.stmts as u64) {
            return;
        }
        // Worst case every iteration appends a coordinate and a value; when
        // that might not fit the allocation budget, back off so the scalar
        // loop faults (or not) at exactly the scalar element.
        if !self.alloc.fits(n.saturating_mul(2)) {
            return;
        }
        if src == idx_out || src == val_out || idx_out == val_out {
            return;
        }
        if !matches!(bufs.get(idx_out), Buffer::I64(_))
            || !matches!(bufs.get(val_out), Buffer::F64(_))
        {
            return;
        }
        let Some(span) = Self::vf64_span(bufs, src, self.vbase_off(base), lo, hiv) else {
            return;
        };
        let mut ilifted = std::mem::replace(bufs.get_mut(idx_out), Buffer::I64(Vec::new().into()));
        let mut vlifted = std::mem::replace(bufs.get_mut(val_out), Buffer::F64(Vec::new().into()));
        let passes;
        {
            let Buffer::I64(ivec) = &mut ilifted else { unreachable!() };
            let Buffer::F64(vvec) = &mut vlifted else { unreachable!() };
            let Buffer::F64(sdata) = bufs.get(src) else { unreachable!() };
            passes = vappend_f64(ivec, vvec, &sdata[span], lo, guard);
        }
        *bufs.get_mut(idx_out) = ilifted;
        *bufs.get_mut(val_out) = vlifted;
        // Pre-checked against the worst case above, so this cannot overrun.
        self.alloc.add_used(passes.saturating_mul(2));
        self.stats.loop_iters += n;
        self.vbump(n, cost);
        self.vbump(passes, pass_cost);
        self.ints[counter.index()] = hiv;
    }

    /// [`Instr::VCmpSelectU8`]: `dst[..v] = set` where `src[..v] cmp imm`
    /// holds, with the stored value clamped then rounded exactly like
    /// [`Instr::StoreU8`].
    #[allow(clippy::too_many_arguments)]
    fn v_cmp_select<B: VmBufs>(
        &mut self,
        bufs: &mut B,
        dst: (BufId, VBase),
        src: (BufId, VBase),
        cmp: BinOp,
        cmp_imm: f64,
        set: f64,
        counter: Reg,
        hi: Reg,
        cost: VCost,
        pass_cost: VCost,
    ) {
        let (lo, hiv) = (self.ints[counter.index()], self.ints[hi.index()]);
        let Some(n) = Self::vbulk_iters(lo, hiv) else { return };
        if !self.vbudget_ok(n, cost.stmts as u64 + pass_cost.stmts as u64) || dst.0 == src.0 {
            return;
        }
        let Some(sspan) = Self::vf64_span(bufs, src.0, self.vbase_off(src.1), lo, hiv) else {
            return;
        };
        let dst_off = self.vbase_off(dst.1);
        let Buffer::U8(ddata) = bufs.get(dst.0) else { return };
        let Some(dspan) = vspan(dst_off, lo, hiv, ddata.len()) else { return };
        let mut lifted = std::mem::replace(bufs.get_mut(dst.0), Buffer::U8(Vec::new()));
        let passes;
        {
            let Buffer::U8(dd) = &mut lifted else { unreachable!() };
            let Buffer::F64(sd) = bufs.get(src.0) else { unreachable!() };
            let byte = set.clamp(0.0, 255.0).round() as u8;
            let mut p = 0u64;
            for (d, &x) in dd[dspan].iter_mut().zip(&sd[sspan]) {
                if Self::cmp_f64(cmp, x, cmp_imm) {
                    *d = byte;
                    p += 1;
                }
            }
            passes = p;
        }
        *bufs.get_mut(dst.0) = lifted;
        self.stats.loop_iters += n;
        self.vbump(n, cost);
        self.vbump(passes, pass_cost);
        self.ints[counter.index()] = hiv;
    }
}

/// The map-shape operands of [`Instr::VMapF64`], bundled so the executor
/// signature stays readable.
#[derive(Clone, Copy)]
struct VMapArgs {
    dst: BufId,
    dst_base: VBase,
    reduce: Option<BinOp>,
    round: bool,
    a: BufId,
    a_base: VBase,
    a_pre: VScale,
    rhs: VRhs,
}

/// The element range `[off+lo, off+hi)` of a buffer of `len` elements,
/// or `None` when any index of the bulk would fall out of bounds (the
/// offset is exact `i128` arithmetic, so index overflow lands here too).
#[inline]
fn vspan(off: i128, lo: i64, hiv: i64, len: usize) -> Option<std::ops::Range<usize>> {
    let start = off + lo as i128;
    let end = off + hiv as i128;
    if start < 0 || end > len as i128 {
        return None;
    }
    Some(start as usize..end as usize)
}

/// Unrolled fill over a pre-checked slice.
fn vfill_f64(dst: &mut [f64], imm: f64, lanes: u8) {
    if lanes == 8 {
        vfill_lanes::<8>(dst, imm);
    } else {
        vfill_lanes::<4>(dst, imm);
    }
}

fn vfill_lanes<const L: usize>(dst: &mut [f64], imm: f64) {
    let (chunks, rest) = dst.as_chunks_mut::<L>();
    for c in chunks {
        *c = [imm; L];
    }
    for s in rest {
        *s = imm;
    }
}

/// Unrolled one-source map over pre-checked, equal-length slices.
fn vmap2_f64(dst: &mut [f64], a: &[f64], reduce: Option<BinOp>, lanes: u8, f: impl Fn(f64) -> f64) {
    if lanes == 8 {
        vmap2_lanes::<8>(dst, a, reduce, &f);
    } else {
        vmap2_lanes::<4>(dst, a, reduce, &f);
    }
}

fn vmap2_lanes<const L: usize>(
    dst: &mut [f64],
    a: &[f64],
    reduce: Option<BinOp>,
    f: &impl Fn(f64) -> f64,
) {
    let (dc, dr) = dst.as_chunks_mut::<L>();
    let (ac, ar) = a.as_chunks::<L>();
    for (d, s) in dc.iter_mut().zip(ac) {
        for k in 0..L {
            d[k] = vcombine(reduce, d[k], f(s[k]));
        }
    }
    for (d, &x) in dr.iter_mut().zip(ar) {
        *d = vcombine(reduce, *d, f(x));
    }
}

/// Unrolled two-source map over pre-checked, equal-length slices.
fn vmap3_f64(
    dst: &mut [f64],
    a: &[f64],
    b: &[f64],
    reduce: Option<BinOp>,
    lanes: u8,
    f: impl Fn(f64, f64) -> f64,
) {
    if lanes == 8 {
        vmap3_lanes::<8>(dst, a, b, reduce, &f);
    } else {
        vmap3_lanes::<4>(dst, a, b, reduce, &f);
    }
}

fn vmap3_lanes<const L: usize>(
    dst: &mut [f64],
    a: &[f64],
    b: &[f64],
    reduce: Option<BinOp>,
    f: &impl Fn(f64, f64) -> f64,
) {
    let (dc, dr) = dst.as_chunks_mut::<L>();
    let (ac, ar) = a.as_chunks::<L>();
    let (bc, br) = b.as_chunks::<L>();
    for ((d, s), t) in dc.iter_mut().zip(ac).zip(bc) {
        for k in 0..L {
            d[k] = vcombine(reduce, d[k], f(s[k], t[k]));
        }
    }
    for ((d, &x), &y) in dr.iter_mut().zip(ar).zip(br) {
        *d = vcombine(reduce, *d, f(x, y));
    }
}

/// A map's store step: plain write or reduce-combine, exactly
/// [`Instr::StoreF64`]'s float fast path.
#[inline]
fn vcombine(reduce: Option<BinOp>, old: f64, new: f64) -> f64 {
    match reduce {
        None => new,
        Some(op) => Vm::float_arith(op, old, new),
    }
}

/// The (optionally guarded) append stream of [`Instr::VAppendRangeF64`];
/// returns how many iterations passed the guard.
fn vappend_f64(
    idx: &mut crate::buffer::AlignedVec<i64>,
    val: &mut crate::buffer::AlignedVec<f64>,
    src: &[f64],
    lo: i64,
    guard: Option<(BinOp, f64)>,
) -> u64 {
    match guard {
        None => {
            idx.reserve(src.len());
            val.reserve(src.len());
            for (k, &x) in src.iter().enumerate() {
                idx.push(lo + k as i64);
                val.push(x);
            }
            src.len() as u64
        }
        Some((op, imm)) => {
            let mut passes = 0u64;
            for (k, &x) in src.iter().enumerate() {
                if Vm::cmp_f64(op, x, imm) {
                    idx.push(lo + k as i64);
                    val.push(x);
                    passes += 1;
                }
            }
            passes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::interp::Interpreter;
    use crate::stmt::Stmt;
    use crate::var::Names;

    fn run_both(
        stmts: &[Stmt],
        names: &Names,
        bufs: &BufferSet,
    ) -> (
        Result<(), RuntimeError>,
        ExecStats,
        Result<(), RuntimeError>,
        ExecStats,
        BufferSet,
        BufferSet,
    ) {
        let mut bufs_interp = bufs.clone();
        let mut interp = Interpreter::new(names);
        let ri = interp.run(stmts, &mut bufs_interp);

        let program = Program::compile(stmts, names);
        program.validate().expect("program validates");
        let mut bufs_vm = bufs.clone();
        let mut vm = Vm::new(&program);
        let rv = vm.run(&program, &mut bufs_vm);
        (ri, interp.stats(), rv, vm.stats(), bufs_interp, bufs_vm)
    }

    /// Assert the two engines agree on success/failure, stats, and buffers.
    fn assert_parity(stmts: &[Stmt], names: &Names, bufs: &BufferSet) {
        let (ri, si, rv, sv, bi, bv) = run_both(stmts, names, bufs);
        assert_eq!(ri.is_ok(), rv.is_ok(), "engines disagree on outcome: {ri:?} vs {rv:?}");
        if ri.is_ok() {
            assert_eq!(si, sv, "work counters diverge");
            for (id, name, buf) in bi.iter() {
                assert_eq!(buf, bv.get(id), "buffer {name} diverges");
            }
        }
    }

    #[test]
    fn for_loop_sums_a_buffer() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(bufs.get(out).load(0), Value::Float(10.0));
        assert_eq!(vm.stats().loop_iters, 4);
        assert_eq!(vm.stats().stores, 4);
        assert_eq!(vm.stats().loads, 4);
    }

    #[test]
    fn while_loop_matches_interpreter() {
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let p = names.fresh("p");
        let acc = names.fresh("acc");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::Let { var: acc, init: Expr::int(0) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(5)),
                body: vec![
                    Stmt::Assign { var: acc, value: Expr::add(Expr::Var(acc), Expr::Var(p)) },
                    Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) },
                ],
            },
        ];
        assert_parity(&prog, &names, &bufs);
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(acc), Some(Value::Int(10)));
    }

    #[test]
    fn nested_control_flow_has_identical_stats() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let p = names.fresh("p");
        let i = names.fresh("i");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(4)),
                body: vec![
                    Stmt::If {
                        cond: Expr::eq(Expr::Var(p), Expr::int(2)),
                        then_branch: vec![Stmt::For {
                            var: i,
                            lo: Expr::int(0),
                            hi: Expr::Var(p),
                            body: vec![Stmt::Store {
                                buf: out,
                                index: Expr::int(0),
                                value: Expr::Var(i),
                                reduce: Some(BinOp::Add),
                            }],
                        }],
                        else_branch: vec![Stmt::Comment("skip".into())],
                    },
                    Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) },
                ],
            },
        ];
        assert_parity(&prog, &names, &bufs);
    }

    #[test]
    fn out_of_bounds_load_is_reported_with_buffer_name() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("vals", Buffer::F64(vec![1.0].into()));
        let v = names.fresh("v");
        let prog = vec![Stmt::Let { var: v, init: Expr::load(x, Expr::int(7)) }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        let err = vm.run(&program, &mut bufs).unwrap_err();
        match err {
            RuntimeError::OutOfBounds { buffer, index, len } => {
                assert_eq!(buffer, "vals");
                assert_eq!(index, 7);
                assert_eq!(len, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unbound_variable_is_an_error_with_its_name() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let a = names.fresh("a");
        let b = names.fresh("mystery");
        let prog = vec![Stmt::Let { var: a, init: Expr::Var(b) }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        let err = vm.run(&program, &mut bufs).unwrap_err();
        match err {
            RuntimeError::UnboundVariable { name } => assert_eq!(name, "mystery"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn step_budget_catches_infinite_loops() {
        let names = Names::new();
        let mut bufs = BufferSet::new();
        let prog =
            vec![Stmt::While { cond: Expr::bool(true), body: vec![Stmt::Comment("spin".into())] }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program).with_step_budget(1000);
        let err = vm.run(&program, &mut bufs).unwrap_err();
        assert!(matches!(err, RuntimeError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn seek_counts_one_search_plus_one_load_per_probe() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![1, 4, 4, 9, 12].into()));
        let v = names.fresh("v");
        let prog = vec![Stmt::Let {
            var: v,
            init: Expr::Search {
                buf: idx,
                lo: Box::new(Expr::int(0)),
                hi: Box::new(Expr::int(4)),
                key: Box::new(Expr::int(10)),
                on_abs: false,
            },
        }];
        let (ri, si, rv, sv, _, _) = run_both(&prog, &names, &bufs);
        ri.unwrap();
        rv.unwrap();
        assert_eq!(si, sv);
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Int(4)));
        assert_eq!(vm.stats().searches, 1);
    }

    #[test]
    fn seek_on_abs_handles_negative_markers() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![3, -6, 8, -11].into()));
        let v = names.fresh("v");
        let prog = vec![Stmt::Let {
            var: v,
            init: Expr::Search {
                buf: idx,
                lo: Box::new(Expr::int(0)),
                hi: Box::new(Expr::int(3)),
                key: Box::new(Expr::int(7)),
                on_abs: true,
            },
        }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Int(2)));
    }

    #[test]
    fn coalesce_returns_first_non_missing() {
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let v = names.fresh("v");
        let prog = vec![Stmt::Let {
            var: v,
            init: Expr::Coalesce(vec![Expr::missing(), Expr::float(5.0), Expr::float(7.0)]),
        }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Float(5.0)));
        assert_parity(&prog, &names, &bufs);
    }

    #[test]
    fn load_at_missing_index_is_missing() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0].into()));
        let v = names.fresh("v");
        let prog = vec![Stmt::Let { var: v, init: Expr::load(x, Expr::missing()) }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Missing));
        assert_eq!(vm.stats().loads, 0, "a missing-index load is not counted");
    }

    #[test]
    fn select_with_missing_condition_takes_else_branch() {
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let v = names.fresh("v");
        let prog = vec![Stmt::Let {
            var: v,
            init: Expr::select(Expr::missing(), Expr::int(1), Expr::int(2)),
        }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Int(2)));
    }

    #[test]
    fn short_circuit_does_not_evaluate_the_guarded_operand() {
        // `q < 1 && x[q] == 3` with q = 5: the tree-walker never loads
        // x[5]; the bytecode engine must not either (no out-of-bounds, no
        // load counted).
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::I64(vec![3].into()));
        let q = names.fresh("q");
        let v = names.fresh("v");
        let prog = vec![
            Stmt::Let { var: q, init: Expr::int(5) },
            Stmt::Let {
                var: v,
                init: Expr::binary(
                    BinOp::And,
                    Expr::lt(Expr::Var(q), Expr::int(1)),
                    Expr::eq(Expr::load(x, Expr::Var(q)), Expr::int(3)),
                ),
            },
        ];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Bool(false)));
        assert_eq!(vm.stats().loads, 0);
        assert_parity(&prog, &names, &bufs);
    }

    #[test]
    fn missing_lhs_still_evaluates_rhs_of_and() {
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let v = names.fresh("v");
        let prog = vec![Stmt::Let {
            var: v,
            init: Expr::binary(BinOp::And, Expr::missing(), Expr::bool(true)),
        }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Missing));
        assert_parity(&prog, &names, &bufs);
    }

    #[test]
    fn self_referential_coalesce_assignment_does_not_clobber() {
        // v = coalesce(missing, v + 1): the first argument must not wipe v
        // before the second reads it.
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let v = names.fresh("v");
        let prog = vec![
            Stmt::Let { var: v, init: Expr::int(41) },
            Stmt::Assign {
                var: v,
                value: Expr::Coalesce(vec![Expr::missing(), Expr::add(Expr::Var(v), Expr::int(1))]),
            },
        ];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Int(42)));
        assert_parity(&prog, &names, &bufs);
    }

    #[test]
    fn empty_for_loop_does_not_execute() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(5),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::int(1),
                reduce: None,
            }],
        }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(bufs.get(out).load(0), Value::Int(0));
        assert_eq!(vm.stats().loop_iters, 0);
        assert_eq!(vm.stats().stmts, 1, "just the for statement itself");
    }

    #[test]
    fn append_and_fiber_end_match_the_interpreter() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![0.0, 1.5, 0.0, 2.0].into()));
        let pos = bufs.add("C_pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("C_idx", Buffer::I64(vec![].into()));
        let val = bufs.add("C_val", Buffer::F64(vec![].into()));
        let i = names.fresh("i");
        let prog = vec![
            Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(3),
                body: vec![Stmt::if_then(
                    Expr::binary(BinOp::Ne, Expr::load(x, Expr::Var(i)), Expr::float(0.0)),
                    vec![
                        Stmt::Append { buf: idx, value: Expr::Var(i) },
                        Stmt::Append { buf: val, value: Expr::load(x, Expr::Var(i)) },
                    ],
                )],
            },
            Stmt::FiberEnd { pos, data: idx },
        ];
        assert_parity(&prog, &names, &bufs);
        let program = Program::compile(&prog, &names);
        program.validate().expect("program validates");
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(bufs.get(pos).as_i64(), Some(&[0, 2][..]));
        assert_eq!(bufs.get(idx).as_i64(), Some(&[1, 3][..]));
        assert_eq!(bufs.get(val).as_f64(), Some(&[1.5, 2.0][..]));
        assert_eq!(vm.stats().stores, 5);
    }

    #[test]
    fn append_of_a_mixed_type_value_defers_to_boxed_push() {
        // A bool appended into an i64 buffer exercises the slow path.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![].into()));
        let v = names.fresh("v");
        let prog = vec![
            Stmt::Let { var: v, init: Expr::bool(true) },
            Stmt::Append { buf: idx, value: Expr::Var(v) },
        ];
        assert_parity(&prog, &names, &bufs);
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert_eq!(bufs.get(idx).as_i64(), Some(&[1][..]));
    }

    #[test]
    fn reset_clears_stats_and_registers() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let a = names.fresh("a");
        let prog = vec![Stmt::Let { var: a, init: Expr::int(1) }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs).unwrap();
        assert!(vm.stats().stmts > 0);
        vm.reset();
        assert_eq!(vm.stats(), ExecStats::default());
        assert_eq!(vm.var_value(a), None);
    }

    #[test]
    fn run_profiled_counts_every_dispatch_with_identical_semantics() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let program = Program::compile(&prog, &names);
        let mut plain = Vm::new(&program);
        plain.run(&program, &mut bufs.clone()).unwrap();
        let mut profiled = Vm::new(&program);
        let mut bufs2 = bufs.clone();
        let counts = profiled.run_profiled(&program, &mut bufs2).unwrap();
        assert_eq!(plain.stats(), profiled.stats(), "profiling must not change semantics");
        assert_eq!(counts.len(), program.code().len());
        assert_eq!(bufs2.get(out).load(0), Value::Float(10.0));
        // The loop head runs 5 times (4 iterations + the failing test);
        // the body store runs 4 times; the prologue once.
        let total: u64 = counts.iter().sum();
        assert!(total > 0);
        for (pc, instr) in program.code().iter().enumerate() {
            match instr {
                Instr::ForTest { .. } => assert_eq!(counts[pc], 5),
                Instr::Store { .. } => assert_eq!(counts[pc], 4),
                Instr::Const { .. } if pc < 5 => assert_eq!(counts[pc], 1),
                _ => {}
            }
        }
    }

    #[test]
    fn mixed_type_arithmetic_falls_back_to_value_semantics() {
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let v = names.fresh("v");
        let prog = vec![Stmt::Let { var: v, init: Expr::mul(Expr::int(2), Expr::float(1.5)) }];
        let program = Program::compile(&prog, &names);
        let mut vm = Vm::new(&program);
        vm.run(&program, &mut bufs.clone()).unwrap();
        assert_eq!(vm.var_value(v), Some(Value::Float(3.0)));
    }
}
