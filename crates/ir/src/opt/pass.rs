//! The translation-validated pass manager.
//!
//! Every transform of the optimisation pipeline — the three IR passes,
//! the IR-to-bytecode lowering, and the two bytecode passes — runs as a
//! named [`Pass`] under a [`PassManager`].  After each pass the manager
//! applies two independent safety layers, gated by a [`ValidationLevel`]:
//!
//! 1. **Static verification** ([`ValidationLevel::Static`] and up): the
//!    representation-appropriate verifier from [`super::verify`] re-checks
//!    structural invariants (def-before-use, effect ordering, jump
//!    alignment, buffer schemas) that a buggy transform could silently
//!    break.
//! 2. **Translation validation** ([`ValidationLevel::Full`]): the manager
//!    executes the pre- and post-pass programs on synthesized witness
//!    inputs — the kernel's own compile-time buffers plus a
//!    deterministically value-perturbed variant — and asserts bit-identical
//!    buffer contents together with a semantics-preserving per-pass
//!    [`ExecStats`] contract (see [`StatsContract`]: work-removing IR
//!    passes keep the effectful `stores` counter exactly and may only
//!    shrink the rest, hoisting may move statements across a loop
//!    boundary, bytecode passes keep every counter exactly).  In the
//!    spirit of verification-condition
//!    generation, the check is derived from the transform's *output*, so
//!    no pass is trusted — a miscompile surfaces as a [`PassError`] naming
//!    the offending pass.
//!
//! Witness runs are cached: the post-state of pass *N* is the pre-state of
//! pass *N+1*, so a pipeline of *k* passes costs *k + 1* witness
//! executions per witness input, not *2k*.

use std::time::Instant;

use crate::buffer::{Buffer, BufferSet};
use crate::bytecode::Program;
use crate::interp::{ExecStats, Interpreter};
use crate::stmt::Stmt;
use crate::var::Names;
use crate::vm::Vm;

use super::verify::{verify_bytecode, verify_ir};
use super::OptStats;

/// Step budget for each witness execution: generous enough for any kernel
/// the test and benchmark suites compile, small enough to flag a pass that
/// introduces non-termination.
const WITNESS_STEP_BUDGET: u64 = 50_000_000;

/// How much checking the pass manager performs after every pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationLevel {
    /// No post-pass checking (the release-mode default; the figure
    /// harness opts back in with `--validate`).
    Off,
    /// Run the static IR/bytecode verifier after every pass.
    Static,
    /// [`ValidationLevel::Static`] plus per-pass translation validation:
    /// execute the pre- and post-pass programs on synthesized witness
    /// inputs and compare outputs bit-for-bit (the debug/test default).
    Full,
}

impl Default for ValidationLevel {
    /// Always-on in debug and test builds, off in release (where the
    /// benchmark harness opts in explicitly).
    fn default() -> Self {
        if cfg!(debug_assertions) {
            ValidationLevel::Full
        } else {
            ValidationLevel::Off
        }
    }
}

impl ValidationLevel {
    /// A short stable label (`off` / `static` / `full`), used by CLI flags
    /// and the benchmark JSON report.
    pub fn label(self) -> &'static str {
        match self {
            ValidationLevel::Off => "off",
            ValidationLevel::Static => "static",
            ValidationLevel::Full => "full",
        }
    }

    /// Parse a label produced by [`ValidationLevel::label`].
    pub fn parse(s: &str) -> Option<ValidationLevel> {
        match s {
            "off" => Some(ValidationLevel::Off),
            "static" => Some(ValidationLevel::Static),
            "full" => Some(ValidationLevel::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for ValidationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The program representation a [`Pass`] transforms.
#[derive(Debug, Clone)]
pub enum Repr {
    /// The statement-tree target IR.
    Ir(Vec<Stmt>),
    /// The flat register bytecode.
    Bytecode(Program),
}

impl Repr {
    /// The contained IR statements.
    ///
    /// # Panics
    ///
    /// Panics when the representation is bytecode.
    pub fn into_ir(self) -> Vec<Stmt> {
        match self {
            Repr::Ir(stmts) => stmts,
            Repr::Bytecode(_) => panic!("expected an IR representation"),
        }
    }

    /// The contained bytecode program.
    ///
    /// # Panics
    ///
    /// Panics when the representation is IR.
    pub fn into_bytecode(self) -> Program {
        match self {
            Repr::Ir(_) => panic!("expected a bytecode representation"),
            Repr::Bytecode(p) => p,
        }
    }
}

/// Shared state a [`Pass`] runs against: the kernel's name table (LICM
/// creates fresh variables), its buffer set when available (the typing
/// pass seeds inference from buffer schemas; translation validation
/// synthesizes witnesses from it), and the accumulated [`OptStats`].
pub struct PassCtx<'a> {
    /// The name table of the program's variables.
    pub names: &'a mut Names,
    /// The kernel's buffers, when compiling a real kernel.  `None` for
    /// the standalone IR pipeline entry point, which skips the passes and
    /// checks that need buffers.
    pub bufs: Option<&'a BufferSet>,
    /// Per-pass counters, accumulated across the whole pipeline.
    pub stats: &'a mut OptStats,
    /// Whether the folding pass may unroll statically-single-iteration
    /// loops (the [`super::OptLevel::Aggressive`] extra).
    pub unroll_point_loops: bool,
}

/// The [`ExecStats`] preservation contract a pass's output must satisfy
/// relative to its input when both complete on a witness.
///
/// Buffer contents must be bit-identical under every contract; the
/// contract only governs the work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsContract {
    /// Every counter is preserved exactly.  The contract of the bytecode
    /// passes, and of lowering itself (the interpreter and the VM count
    /// work identically by design).
    Exact,
    /// `stores` is preserved exactly; every other counter may shrink but
    /// never grow.  The contract of work-removing IR passes (folding,
    /// dead-code elimination).
    Shrinks,
    /// `stores` is preserved exactly and `loop_iters`/`searches` may
    /// shrink but never grow, while `stmts` and `loads` are
    /// unconstrained: hoisting moves statements across a loop boundary,
    /// so a zero-trip loop *increases* the executed-statement and load
    /// counts (the hoisted code now runs once instead of never).
    Hoisting,
}

/// One named transform over a program representation.
///
/// A pass must be *value-exact* for completing programs: the transformed
/// program stores bit-identical results into every buffer.  The pass
/// manager enforces this (per [`ValidationLevel`]) rather than trusting
/// it.
pub trait Pass {
    /// Stable pass name, used for error attribution and the per-pass
    /// timing report.
    fn name(&self) -> &'static str;
    /// Transform the representation.
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr;
    /// The [`ExecStats`] contract enforced on this pass's witness runs.
    /// Defaults to the strictest level, [`StatsContract::Exact`].
    fn stats_contract(&self) -> StatsContract {
        StatsContract::Exact
    }
}

/// A verification or translation-validation failure, attributed to the
/// pass whose output broke the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// The name of the offending pass.
    pub pass: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pass `{}` failed validation: {}", self.pass, self.detail)
    }
}

impl std::error::Error for PassError {}

/// Wall-clock accounting for one executed pass: the transform itself, the
/// static verifier, and the witness-based translation validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassReport {
    /// The pass's stable name.
    pub name: &'static str,
    /// Nanoseconds spent in the transform.
    pub transform_nanos: u64,
    /// Nanoseconds spent in the static verifier (0 at
    /// [`ValidationLevel::Off`]).
    pub verify_nanos: u64,
    /// Nanoseconds spent executing and comparing witnesses (0 below
    /// [`ValidationLevel::Full`]).
    pub validate_nanos: u64,
}

/// The outcome of executing one witness input against the current
/// representation: the final buffer contents and work counters, or a
/// marker that the program faulted (in which case later comparisons are
/// skipped — the optimiser is allowed to remove a fault, never to add
/// one).
#[derive(Debug, Clone)]
enum WitnessOutcome {
    Ran(BufferSet, ExecStats),
    Faulted,
}

/// Runs passes in order, applying post-pass verification and translation
/// validation, and collecting one [`PassReport`] per executed pass.
pub struct PassManager {
    validation: ValidationLevel,
    reports: Vec<PassReport>,
    /// Per-witness cached outcome of the *current* representation; the
    /// post-state of the last validated pass.  `None` until the first
    /// pass runs under [`ValidationLevel::Full`] with buffers available.
    witness_state: Option<Vec<(BufferSet, WitnessOutcome)>>,
}

impl PassManager {
    /// A manager checking at the given level.
    pub fn new(validation: ValidationLevel) -> Self {
        PassManager { validation, reports: Vec::new(), witness_state: None }
    }

    /// The per-pass timing reports accumulated so far, in execution order.
    pub fn reports(&self) -> &[PassReport] {
        &self.reports
    }

    /// Consume the manager, yielding the per-pass timing reports.
    pub fn into_reports(self) -> Vec<PassReport> {
        self.reports
    }

    /// Run one pass over the representation, then verify and (at
    /// [`ValidationLevel::Full`]) differentially validate its output.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] naming `pass` when its output fails the
    /// static verifier, diverges from the pre-pass program on a witness
    /// input, or breaks the [`ExecStats`] preservation contract.
    pub fn run_pass(
        &mut self,
        pass: &dyn Pass,
        repr: Repr,
        ctx: &mut PassCtx<'_>,
    ) -> Result<Repr, PassError> {
        // Establish the pre-pass witness baseline lazily, before the
        // first transform runs.
        let mut validate_nanos = 0u64;
        if self.validation == ValidationLevel::Full && self.witness_state.is_none() {
            if let Some(bufs) = ctx.bufs {
                let t = Instant::now();
                let witnesses = synthesize_witnesses(bufs);
                self.witness_state = Some(
                    witnesses
                        .into_iter()
                        .map(|w| {
                            let outcome = execute_witness(&repr, ctx.names, &w);
                            (w, outcome)
                        })
                        .collect(),
                );
                validate_nanos += t.elapsed().as_nanos() as u64;
            }
        }

        let t = Instant::now();
        let post = pass.run(repr, ctx);
        let transform_nanos = t.elapsed().as_nanos() as u64;

        let mut verify_nanos = 0u64;
        if self.validation != ValidationLevel::Off {
            let t = Instant::now();
            let checked = match &post {
                Repr::Ir(stmts) => verify_ir(stmts, ctx.names, ctx.bufs),
                Repr::Bytecode(program) => match ctx.bufs {
                    Some(bufs) => verify_bytecode(program, bufs),
                    None => program.validate(),
                },
            };
            verify_nanos = t.elapsed().as_nanos() as u64;
            checked.map_err(|detail| PassError { pass: pass.name(), detail })?;
        }

        if let Some(state) = self.witness_state.as_mut() {
            let t = Instant::now();
            let contract = pass.stats_contract();
            for (witness, cached) in state.iter_mut() {
                let outcome = execute_witness(&post, ctx.names, witness);
                compare_outcomes(cached, &outcome, contract)
                    .map_err(|detail| PassError { pass: pass.name(), detail })?;
                *cached = outcome;
            }
            // A non-empty shard plan adds a parallel execution mode to the
            // program: validate it like any other transform, by running
            // every witness sharded and requiring bit-identical outputs
            // and exact stats against the serial run just cached.
            if let Repr::Bytecode(program) = &post {
                if !program.shard_plan().is_empty() {
                    for (witness, cached) in state.iter() {
                        let sharded = execute_witness_sharded(program, witness);
                        compare_outcomes(cached, &sharded, StatsContract::Exact).map_err(
                            |detail| PassError {
                                pass: pass.name(),
                                detail: format!("sharded execution diverges from serial: {detail}"),
                            },
                        )?;
                    }
                }
            }
            validate_nanos += t.elapsed().as_nanos() as u64;
        }

        self.reports.push(PassReport {
            name: pass.name(),
            transform_nanos,
            verify_nanos,
            validate_nanos,
        });
        Ok(post)
    }
}

/// Witness inputs for translation validation: the kernel's compile-time
/// buffers verbatim (a structurally-valid state: dense outputs are
/// initialised by the generated code, sparse outputs start empty), plus a
/// variant whose float *value* arrays are deterministically perturbed —
/// structure buffers (positions, coordinates, masks) are kept intact so
/// every format invariant still holds, while value-path miscompiles that
/// happen to be invisible on the original data get a second chance to
/// surface.
fn synthesize_witnesses(bufs: &BufferSet) -> Vec<BufferSet> {
    let original = bufs.clone();
    let mut perturbed = bufs.clone();
    // Deterministic splitmix64 stream; no external RNG dependency.
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let ids: Vec<_> = perturbed.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        if let Buffer::F64(values) = perturbed.get_mut(id) {
            for v in values.iter_mut() {
                // Map to a small, exactly-representable grid so value
                // comparisons in the kernel stay deterministic.
                *v = ((next() % 64) as f64 - 16.0) * 0.25;
            }
        }
    }
    vec![original, perturbed]
}

/// Execute the representation against a copy of the witness buffers.
fn execute_witness(repr: &Repr, names: &Names, witness: &BufferSet) -> WitnessOutcome {
    let mut bufs = witness.clone();
    match repr {
        Repr::Ir(stmts) => {
            let mut interp = Interpreter::new(names).with_step_budget(WITNESS_STEP_BUDGET);
            match interp.run(stmts, &mut bufs) {
                Ok(()) => WitnessOutcome::Ran(bufs, interp.stats()),
                Err(_) => WitnessOutcome::Faulted,
            }
        }
        Repr::Bytecode(program) => {
            let mut vm = Vm::new(program).with_step_budget(WITNESS_STEP_BUDGET);
            match vm.run(program, &mut bufs) {
                Ok(()) => WitnessOutcome::Ran(bufs, vm.stats()),
                Err(_) => WitnessOutcome::Faulted,
            }
        }
    }
}

/// Execute the program against a copy of the witness buffers through the
/// parallel sharded driver (3 threads exercises an uneven split on the
/// usual power-of-two extents).
fn execute_witness_sharded(program: &Program, witness: &BufferSet) -> WitnessOutcome {
    let mut bufs = witness.clone();
    let mut vm = Vm::new(program).with_step_budget(WITNESS_STEP_BUDGET);
    match crate::par::run_sharded(&mut vm, program, &mut bufs, 3) {
        Ok(()) => WitnessOutcome::Ran(bufs, vm.stats()),
        Err(_) => WitnessOutcome::Faulted,
    }
}

/// Compare the cached pre-pass outcome against the post-pass outcome.
///
/// Buffer contents must be bit-identical.  The [`ExecStats`] check is
/// governed by the pass's declared [`StatsContract`].
fn compare_outcomes(
    pre: &WitnessOutcome,
    post: &WitnessOutcome,
    contract: StatsContract,
) -> Result<(), String> {
    let (pre_bufs, pre_stats) = match pre {
        WitnessOutcome::Ran(b, s) => (b, s),
        // The pre-pass program faulted on this witness: the optimiser may
        // legally remove the fault, so there is nothing to compare.
        WitnessOutcome::Faulted => return Ok(()),
    };
    let (post_bufs, post_stats) = match post {
        WitnessOutcome::Ran(b, s) => (b, s),
        WitnessOutcome::Faulted => {
            return Err("witness run faults after the pass but completed before it".into())
        }
    };
    for (id, name, pre_buf) in pre_bufs.iter() {
        let post_buf = post_bufs.get(id);
        if !buffers_bit_equal(pre_buf, post_buf) {
            return Err(format!(
                "witness outputs diverge in buffer `{name}`: {pre_buf:?} vs {post_buf:?}"
            ));
        }
    }
    match contract {
        StatsContract::Exact => {
            if post_stats != pre_stats {
                return Err(format!(
                    "pass must preserve ExecStats exactly: {pre_stats:?} vs {post_stats:?}"
                ));
            }
        }
        StatsContract::Shrinks | StatsContract::Hoisting => {
            if post_stats.stores != pre_stats.stores {
                return Err(format!(
                    "effectful store count changed: {} before, {} after",
                    pre_stats.stores, post_stats.stores
                ));
            }
            let shrank = |name: &str, pre: u64, post: u64| -> Result<(), String> {
                if post > pre {
                    return Err(format!("{name} counter grew: {pre} before, {post} after"));
                }
                Ok(())
            };
            if contract == StatsContract::Shrinks {
                shrank("stmts", pre_stats.stmts, post_stats.stmts)?;
                shrank("loads", pre_stats.loads, post_stats.loads)?;
            }
            shrank("loop_iters", pre_stats.loop_iters, post_stats.loop_iters)?;
            shrank("searches", pre_stats.searches, post_stats.searches)?;
        }
    }
    Ok(())
}

/// Bit-exact buffer comparison: floats compare by `to_bits`, so `-0.0`
/// vs `0.0` and NaN payload changes count as divergence.
fn buffers_bit_equal(a: &Buffer, b: &Buffer) -> bool {
    match (a, b) {
        (Buffer::F64(x), Buffer::F64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        }
        _ => a == b,
    }
}
