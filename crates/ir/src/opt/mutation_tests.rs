//! Mutation tests for the translation-validated pass manager.
//!
//! Each test seeds one deliberate miscompile — as a fake [`Pass`] mutating
//! known-good IR or bytecode — and asserts the pass manager flags it with
//! the mutation's name attributed in the [`PassError`].  This is the
//! verifier's own test suite: a checker that cannot catch a planted bug
//! would silently pass every real pipeline too.

use super::*;
use crate::buffer::{Buffer, BufferSet};
use crate::bytecode::{Instr, VRhs, VScale};
use crate::expr::Expr;
use crate::value::Value;

/// A seeded miscompile: a named pass applying a fixed mutation.
struct SeededMutation {
    name: &'static str,
    mutate: fn(Repr) -> Repr,
}

impl Pass for SeededMutation {
    fn name(&self) -> &'static str {
        self.name
    }
    fn run(&self, repr: Repr, _ctx: &mut PassCtx<'_>) -> Repr {
        (self.mutate)(repr)
    }
}

/// A known-good sparse-output kernel: walk a dense value array, append
/// coordinates and doubled values into a sparse fiber, accumulate a dense
/// sum, then close both fibers.  Exercises every effect the verifier and
/// the witness comparison reason about (Store, Append, FiberEnd).
fn known_good_kernel() -> (Vec<Stmt>, Names, BufferSet) {
    let mut names = Names::new();
    let mut bufs = BufferSet::new();
    let x = bufs.add("x", Buffer::F64(vec![1.0, 0.5, 2.0, 0.25].into()));
    let acc = bufs.add("acc", Buffer::F64(vec![0.0].into()));
    let pos_idx = bufs.add("pos_idx", Buffer::I64(vec![0].into()));
    let pos_val = bufs.add("pos_val", Buffer::I64(vec![0].into()));
    let out_idx = bufs.add("out_idx", Buffer::I64(vec![].into()));
    let out_val = bufs.add("out_val", Buffer::F64(vec![].into()));
    let i = names.fresh("i");
    let v = names.fresh("v");
    let stmts = vec![
        Stmt::For {
            var: i,
            lo: Expr::int(0),
            // `For` bounds are inclusive.
            hi: Expr::sub(Expr::BufLen(x), Expr::int(1)),
            body: vec![
                Stmt::Let { var: v, init: Expr::load(x, Expr::Var(i)) },
                Stmt::Append { buf: out_idx, value: Expr::Var(i) },
                Stmt::Append { buf: out_val, value: Expr::mul(Expr::Var(v), Expr::float(2.0)) },
                Stmt::Store {
                    buf: acc,
                    index: Expr::int(0),
                    value: Expr::Var(v),
                    reduce: Some(crate::expr::BinOp::Add),
                },
            ],
        },
        Stmt::FiberEnd { pos: pos_idx, data: out_idx },
        Stmt::FiberEnd { pos: pos_val, data: out_val },
    ];
    (stmts, names, bufs)
}

/// Run one seeded mutation over the known-good kernel IR at
/// [`ValidationLevel::Full`] and return the manager's verdict.
fn run_ir_mutation(mutation: &SeededMutation) -> Result<Repr, PassError> {
    let (stmts, mut names, bufs) = known_good_kernel();
    let mut stats = OptStats::default();
    let mut ctx = PassCtx {
        names: &mut names,
        bufs: Some(&bufs),
        stats: &mut stats,
        unroll_point_loops: false,
    };
    let mut manager = PassManager::new(ValidationLevel::Full);
    manager.run_pass(mutation, Repr::Ir(stmts), &mut ctx)
}

/// Run one seeded mutation over the known-good kernel's compiled bytecode.
fn run_bytecode_mutation(mutation: &SeededMutation) -> Result<Repr, PassError> {
    let (stmts, mut names, bufs) = known_good_kernel();
    let program = Program::compile(&stmts, &names);
    let mut stats = OptStats::default();
    let mut ctx = PassCtx {
        names: &mut names,
        bufs: Some(&bufs),
        stats: &mut stats,
        unroll_point_loops: false,
    };
    let mut manager = PassManager::new(ValidationLevel::Full);
    manager.run_pass(mutation, Repr::Bytecode(program), &mut ctx)
}

/// A known-good *typed* dense kernel whose counted inner loop the real
/// vectorize pass fuses into a kernel op: `y[i] = x[i] * 2.0` over the
/// whole input.  Used by the bad-vectorization mutation tests below.
fn known_good_typed_kernel() -> (Program, Names, BufferSet) {
    let mut names = Names::new();
    let mut bufs = BufferSet::new();
    // Twelve elements so the kernel op's bulk path actually executes on
    // the validation witnesses (it declines trips under its runtime
    // minimum, falling back to the scalar loop).
    let data: Vec<f64> = (0..12).map(|k| 2.0_f64.powi(3 - k)).collect();
    let x = bufs.add("x", Buffer::F64(data.into()));
    let y = bufs.add("y", Buffer::F64(vec![0.0; 12].into()));
    let i = names.fresh("i");
    let stmts = vec![Stmt::For {
        var: i,
        lo: Expr::int(0),
        hi: Expr::int(11),
        body: vec![Stmt::Store {
            buf: y,
            index: Expr::Var(i),
            value: Expr::mul(Expr::load(x, Expr::Var(i)), Expr::float(2.0)),
            reduce: None,
        }],
    }];
    let raw = Program::compile(&stmts, &names);
    let fused = peephole(&raw, &mut OptStats::default());
    let typed = typing::specialize(&fused, &bufs, &mut OptStats::default());
    (typed, names, bufs)
}

/// Run one seeded mutation over the typed dense kernel's bytecode.
fn run_typed_bytecode_mutation(mutation: &SeededMutation) -> Result<Repr, PassError> {
    let (program, mut names, bufs) = known_good_typed_kernel();
    let mut stats = OptStats::default();
    let mut ctx = PassCtx {
        names: &mut names,
        bufs: Some(&bufs),
        stats: &mut stats,
        unroll_point_loops: false,
    };
    let mut manager = PassManager::new(ValidationLevel::Full);
    manager.run_pass(mutation, Repr::Bytecode(program), &mut ctx)
}

/// Assert that the mutation is caught and the error names it.
fn assert_caught(result: Result<Repr, PassError>, name: &'static str, detail_has: &str) {
    let err = result.expect_err("the seeded miscompile must be flagged");
    assert_eq!(err.pass, name, "the error must attribute the offending pass");
    assert!(err.detail.contains(detail_has), "`{}` should mention `{detail_has}`", err.detail);
}

#[test]
fn the_identity_pass_validates_cleanly() {
    let id = SeededMutation { name: "identity", mutate: |r| r };
    run_ir_mutation(&id).expect("the identity transform is value-exact");
    run_bytecode_mutation(&id).expect("the identity transform is value-exact");
}

#[test]
fn dropping_a_fiber_end_is_caught() {
    let m = SeededMutation {
        name: "drop-fiberend",
        mutate: |r| {
            let mut stmts = r.into_ir();
            stmts.retain(|s| !matches!(s, Stmt::FiberEnd { .. }));
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "drop-fiberend", "diverge");
}

#[test]
fn a_wrongly_folded_constant_is_caught() {
    // Simulates a constant-folding bug: `v * 2.0` "folds" to `v * 3.0`.
    let m = SeededMutation {
        name: "misfold-const",
        mutate: |r| {
            let stmts = r
                .into_ir()
                .iter()
                .map(|s| {
                    s.map_exprs(&mut |e| {
                        e.map(&mut |sub| match sub {
                            Expr::Lit(Value::Float(x)) if *x == 2.0 => Some(Expr::float(3.0)),
                            _ => None,
                        })
                    })
                })
                .collect();
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "misfold-const", "diverge");
}

#[test]
fn hoisting_a_loop_variant_load_is_caught() {
    // Simulates a LICM bug: `let v = x[i]` moves above the loop that
    // binds `i`, so the def-before-use analysis sees an undefined read.
    let m = SeededMutation {
        name: "bad-hoist",
        mutate: |r| {
            let mut stmts = r.into_ir();
            if let Stmt::For { body, .. } = &mut stmts[0] {
                let hoisted = body.remove(0);
                stmts.insert(0, hoisted);
            }
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "bad-hoist", "dominating definition");
}

#[test]
fn deleting_an_effectful_append_is_caught() {
    let m = SeededMutation {
        name: "drop-append",
        mutate: |r| {
            let mut stmts = r.into_ir();
            if let Stmt::For { body, .. } = &mut stmts[0] {
                body.retain(|s| !matches!(s, Stmt::Append { .. }));
            }
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "drop-append", "diverge");
}

#[test]
fn reordering_a_use_before_its_def_is_caught() {
    // Move the `let v = x[i]` below the append that reads `v`.
    let m = SeededMutation {
        name: "bad-schedule",
        mutate: |r| {
            let mut stmts = r.into_ir();
            if let Stmt::For { body, .. } = &mut stmts[0] {
                body.swap(0, 2);
            }
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "bad-schedule", "dominating definition");
}

#[test]
fn changing_a_reduction_operator_is_caught() {
    let m = SeededMutation {
        name: "swap-reduce",
        mutate: |r| {
            let mut stmts = r.into_ir();
            if let Stmt::For { body, .. } = &mut stmts[0] {
                for s in body.iter_mut() {
                    if let Stmt::Store { reduce, .. } = s {
                        *reduce = Some(crate::expr::BinOp::Mul);
                    }
                }
            }
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "swap-reduce", "diverge");
}

#[test]
fn appending_after_the_fiber_closed_is_caught() {
    let m = SeededMutation {
        name: "late-append",
        mutate: |r| {
            let mut stmts = r.into_ir();
            stmts.push(Stmt::Append { buf: crate::buffer::BufId(4), value: Expr::int(99) });
            Repr::Ir(stmts)
        },
    };
    assert_caught(run_ir_mutation(&m), "late-append", "after its fiber was closed");
}

#[test]
fn mistyping_a_register_load_is_caught() {
    // Simulates a typing-pass bug: an untyped Load of an F64 buffer is
    // rewritten into the i64-lane form.
    let m = SeededMutation {
        name: "mistype-load",
        mutate: |r| {
            let mut program = r.into_bytecode();
            for instr in program.code.iter_mut() {
                if let Instr::Load { dst, buf, idx } = *instr {
                    if buf.index() == 0 {
                        *instr = Instr::LoadI64 { dst, buf, idx };
                        break;
                    }
                }
            }
            Repr::Bytecode(program)
        },
    };
    assert_caught(run_bytecode_mutation(&m), "mistype-load", "to be i64");
}

#[test]
fn a_misaligned_for_back_edge_is_caught() {
    let m = SeededMutation {
        name: "misalign-backedge",
        mutate: |r| {
            let mut program = r.into_bytecode();
            for instr in program.code.iter_mut() {
                if let Instr::ForStep { test, .. } = instr {
                    *test = 0; // pc 0 is a BumpStmt, not a loop head
                    break;
                }
            }
            Repr::Bytecode(program)
        },
    };
    assert_caught(run_bytecode_mutation(&m), "misalign-backedge", "not a loop head");
}

#[test]
fn an_out_of_range_register_is_caught() {
    let m = SeededMutation {
        name: "oob-register",
        mutate: |r| {
            let mut program = r.into_bytecode();
            let oob = crate::bytecode::Reg(program.num_regs() as u32 + 5);
            for instr in program.code.iter_mut() {
                if let Instr::Const { dst, .. } = instr {
                    *dst = oob;
                    break;
                }
            }
            Repr::Bytecode(program)
        },
    };
    assert_caught(run_bytecode_mutation(&m), "oob-register", "outside the file");
}

#[test]
fn a_jump_past_the_end_is_caught() {
    let m = SeededMutation {
        name: "wild-jump",
        mutate: |r| {
            let mut program = r.into_bytecode();
            let past = program.code.len() as u32 + 7;
            for instr in program.code.iter_mut() {
                if let Instr::ForTest { end, .. } = instr {
                    *end = past;
                    break;
                }
            }
            Repr::Bytecode(program)
        },
    };
    assert_caught(run_bytecode_mutation(&m), "wild-jump", "past the end");
}

#[test]
fn the_real_vectorize_pass_validates_cleanly_on_a_fusable_loop() {
    // Control for the bad-vectorization case below: the actual pass
    // inserts a kernel op here and must survive full witness validation
    // (bit-identical buffers, exact work counters).
    let m = SeededMutation {
        name: "vectorize",
        mutate: |r| {
            let p = r.into_bytecode();
            Repr::Bytecode(vectorize(&p, &mut OptStats::default()))
        },
    };
    let out = run_typed_bytecode_mutation(&m).expect("the real pass is value- and stats-exact");
    let fused = out.into_bytecode();
    assert!(
        fused.code().iter().any(|i| matches!(i, Instr::VMapF64 { .. })),
        "the fusable loop must actually produce a kernel op:\n{}",
        fused.disasm()
    );
}

#[test]
fn a_bad_vectorization_is_caught_and_attributed() {
    // Simulates a vectorizer bug: the loop is fused correctly, but the
    // kernel op's inlined scale immediate is off — the kind of semantic
    // slip (wrong constant, wrong trip count, dropped remainder) only the
    // witness comparison can see, since the encoding stays well-formed.
    let m = SeededMutation {
        name: "vectorize",
        mutate: |r| {
            let mut p = vectorize(&r.into_bytecode(), &mut OptStats::default());
            for instr in p.code.iter_mut() {
                if let Instr::VMapF64 { a_pre, rhs, round, .. } = instr {
                    match (a_pre, rhs) {
                        (VScale::Left { imm, .. } | VScale::Right { imm, .. }, _)
                        | (_, VRhs::Imm { imm, .. }) => *imm += 0.5,
                        _ => *round = true,
                    }
                    break;
                }
            }
            Repr::Bytecode(p)
        },
    };
    assert_caught(run_typed_bytecode_mutation(&m), "vectorize", "diverge");
}

#[test]
fn an_overlapping_shard_partition_is_caught_and_attributed() {
    // Seeds a broken parallel plan: the partitioner is corrupted (via the
    // `CORRUPT_PARTITION` test hook) so two shards' row ranges overlap and
    // one iteration runs twice.  The plan itself stays structurally valid —
    // only the sharded witness execution can see the duplicated work, and
    // the failure must be attributed to the `shard` pass.
    let mut names = Names::new();
    let mut bufs = BufferSet::new();
    let data: Vec<f64> = (0..12).map(|k| k as f64 * 0.5 - 2.0).collect();
    let x = bufs.add("x", Buffer::F64(data.into()));
    let y = bufs.add("y", Buffer::F64(vec![0.0; 12].into()));
    let i = names.fresh("i");
    let stmts = vec![Stmt::For {
        var: i,
        lo: Expr::int(0),
        hi: Expr::int(11),
        body: vec![Stmt::Store {
            buf: y,
            index: Expr::Var(i),
            value: Expr::mul(Expr::load(x, Expr::Var(i)), Expr::float(2.0)),
            reduce: None,
        }],
    }];
    let specs = shard::analyze_ir(&stmts, &names, &bufs);
    assert!(!specs.is_empty(), "the partitioned map is shardable at the IR stage");
    let raw = Program::compile(&stmts, &names);
    let fused = peephole(&raw, &mut OptStats::default());
    let typed = typing::specialize(&fused, &bufs, &mut OptStats::default());
    let pass = shard::ShardPass { specs };
    let run = |program: Program, names: &mut Names, bufs: &BufferSet| {
        let mut stats = OptStats::default();
        let mut ctx =
            PassCtx { names, bufs: Some(bufs), stats: &mut stats, unroll_point_loops: false };
        let mut manager = PassManager::new(ValidationLevel::Full);
        manager.run_pass(&pass, Repr::Bytecode(program), &mut ctx)
    };
    // Control: with an honest partitioner the real pass validates cleanly
    // and records a non-empty plan.
    let out = run(typed.clone(), &mut names, &bufs).expect("the honest plan is value-exact");
    assert!(!out.into_bytecode().shard_plan().is_empty(), "the map loop must shard");
    // Mutation: overlapping row ranges must fail the sharded witness
    // comparison, attributed to the shard pass.
    crate::par::CORRUPT_PARTITION.with(|c| c.set(true));
    let verdict = run(typed, &mut names, &bufs);
    crate::par::CORRUPT_PARTITION.with(|c| c.set(false));
    assert_caught(verdict, "shard", "sharded");
}

#[test]
fn a_value_mutating_bytecode_rewrite_is_caught_by_witnesses() {
    // A structurally-valid but semantically-wrong rewrite: the constant
    // pool's 2.0 becomes 2.5, so every typed check passes and only the
    // witness comparison can see the miscompile.
    let m = SeededMutation {
        name: "poison-const",
        mutate: |r| {
            let mut program = r.into_bytecode();
            for c in program.consts.iter_mut() {
                if let Value::Float(x) = c {
                    if *x == 2.0 {
                        *x = 2.5;
                    }
                }
            }
            Repr::Bytecode(program)
        },
    };
    assert_caught(run_bytecode_mutation(&m), "poison-const", "diverge");
}
