//! Bytecode peephole fusion and register coalescing.
//!
//! The register compiler emits one instruction per IR node, which makes
//! the dispatch loop pay one round trip for every `Mov` of a variable into
//! an operand temp, every materialised constant, and every
//! compare-then-branch pair.  This pass rewrites a compiled
//! [`Program`] in place of those patterns:
//!
//! * `Mov t, v ; I(reads t)` → `I(reads v)` — operand forwarding, removing
//!   the copy entirely,
//! * `Const t ; Binary dst, lhs, t` → [`Instr::BinaryImm`],
//! * `Load t ; Binary dst, lhs, t` → [`Instr::LoadBinary`],
//! * `Binary(cmp) t ; JumpIfFalse t` → [`Instr::CmpBranch`] (and the
//!   immediate variant [`Instr::CmpBranchImm`]),
//! * `Binary(cmp) t ; WhileTest t` → [`Instr::WhileCmp`] (and
//!   [`Instr::WhileCmpImm`]),
//!
//! then compacts the surviving temp registers into a dense range so the
//! register file shrinks along with the instruction count.
//!
//! Every fused instruction maintains [`crate::interp::ExecStats`] exactly
//! as its unfused expansion (loads count loads, while heads count loop
//! iterations, nothing else counts anything), so engine parity stays
//! bit-for-bit at any opt level.
//!
//! Safety relies on two structural properties of the compiler's output,
//! both checked conservatively here:
//!
//! 1. A pair is never fused when its second instruction is a jump target —
//!    entering between the halves would observe different state.
//! 2. A temp is only forwarded/fused away when no later instruction reads
//!    it before writing it (a linear scan; sound because the compiler
//!    always writes an expression temp before reading it within any
//!    straight-line region, so a linearly-earlier read reached through a
//!    back edge is always re-dominated by its own write).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::bytecode::{Instr, Program, Reg, VBase, VRhs};
use crate::expr::BinOp;

use super::OptStats;

/// Run peephole fusion (to a bounded fixpoint) and register coalescing
/// over a compiled program, returning the optimised copy.
pub fn peephole(program: &Program, stats: &mut OptStats) -> Program {
    let mut p = program.clone();
    // Each round can expose new pairs (e.g. `Mov` forwarding makes a
    // compare adjacent to its branch); kernels settle within a few rounds.
    for _ in 0..8 {
        let (next, changed) = fuse_round(&p, stats);
        p = next;
        if !changed {
            break;
        }
    }
    compact_registers(&mut p, stats);
    p
}

fn is_cmp(op: BinOp) -> bool {
    matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
}

/// Absolute indices any instruction can transfer control to.
fn jump_targets(code: &[Instr]) -> HashSet<u32> {
    let mut targets = HashSet::new();
    for instr in code {
        match *instr {
            Instr::Jump { target }
            | Instr::JumpIfFalse { target, .. }
            | Instr::JumpIfTrue { target, .. }
            | Instr::JumpIfMissing { target, .. }
            | Instr::JumpIfNotMissing { target, .. }
            | Instr::CmpBranch { target, .. }
            | Instr::CmpBranchImm { target, .. } => {
                targets.insert(target);
            }
            Instr::WhileTest { end, .. }
            | Instr::ForTest { end, .. }
            | Instr::WhileCmp { end, .. }
            | Instr::WhileCmpImm { end, .. }
            | Instr::IWhileCmp { end, .. }
            | Instr::IWhileCmpImm { end, .. }
            | Instr::FWhileCmp { end, .. }
            | Instr::IForTest { end, .. } => {
                targets.insert(end);
            }
            Instr::ICmpBranch { target, .. }
            | Instr::ICmpBranchImm { target, .. }
            | Instr::FCmpBranch { target, .. }
            | Instr::FCmpBranchImm { target, .. } => {
                targets.insert(target);
            }
            Instr::ForStep { test, .. } => {
                targets.insert(test);
            }
            _ => {}
        }
    }
    targets
}

/// Visit every register operand of an instruction — reads *and* writes —
/// mutably.  This is the single authoritative operand enumeration used by
/// register compaction: an operand missed here would keep a stale index
/// after renumbering, so there is deliberately exactly one such list.
fn for_each_reg(instr: &mut Instr, f: &mut dyn FnMut(&mut Reg)) {
    match instr {
        Instr::BumpStmt | Instr::Jump { .. } | Instr::FiberEnd { .. } => {}
        Instr::Const { dst, .. } | Instr::BufLen { dst, .. } => f(dst),
        Instr::Mov { dst, src } | Instr::Unary { dst, src, .. } => {
            f(dst);
            f(src);
        }
        Instr::Load { dst, idx, .. } => {
            f(dst);
            f(idx);
        }
        Instr::CoerceInt { reg } => f(reg),
        Instr::Store { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Instr::Binary { dst, lhs, rhs, .. } => {
            f(dst);
            f(lhs);
            f(rhs);
        }
        Instr::JumpIfFalse { src, .. }
        | Instr::JumpIfTrue { src, .. }
        | Instr::JumpIfMissing { src, .. }
        | Instr::JumpIfNotMissing { src, .. } => f(src),
        Instr::WhileTest { cond, .. } => f(cond),
        Instr::ForTest { counter, hi, var, .. } => {
            f(counter);
            f(hi);
            f(var);
        }
        Instr::ForStep { counter, .. } => f(counter),
        Instr::Append { val, .. } => f(val),
        Instr::Seek { dst, lo, hi, key, .. } => {
            f(dst);
            f(lo);
            f(hi);
            f(key);
        }
        Instr::BinaryImm { dst, lhs, .. } => {
            f(dst);
            f(lhs);
        }
        Instr::LoadBinary { dst, lhs, idx, .. } => {
            f(dst);
            f(lhs);
            f(idx);
        }
        Instr::CmpBranch { lhs, rhs, .. } | Instr::WhileCmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Instr::CmpBranchImm { lhs, .. } | Instr::WhileCmpImm { lhs, .. } => f(lhs),
        Instr::Nop => {}
        Instr::ConstI { dst, .. } | Instr::ConstF { dst, .. } | Instr::ILen { dst, .. } => f(dst),
        Instr::IMov { dst, src } | Instr::FMov { dst, src } | Instr::FRound { dst, src } => {
            f(dst);
            f(src);
        }
        Instr::LoadI64 { dst, idx, .. }
        | Instr::LoadF64 { dst, idx, .. }
        | Instr::LoadU8 { dst, idx, .. } => {
            f(dst);
            f(idx);
        }
        Instr::FMulLoad { dst, lhs, idx, .. } => {
            f(dst);
            f(lhs);
            f(idx);
        }
        Instr::StoreF64 { idx, val, .. } | Instr::StoreU8 { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Instr::IAppend { val, .. } | Instr::FAppend { val, .. } => f(val),
        Instr::IArith { dst, lhs, rhs, .. } | Instr::FArith { dst, lhs, rhs, .. } => {
            f(dst);
            f(lhs);
            f(rhs);
        }
        Instr::IArithImm { dst, lhs, .. } | Instr::FArithImm { dst, lhs, .. } => {
            f(dst);
            f(lhs);
        }
        Instr::ICmpBranch { lhs, rhs, .. }
        | Instr::FCmpBranch { lhs, rhs, .. }
        | Instr::IWhileCmp { lhs, rhs, .. }
        | Instr::FWhileCmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Instr::ICmpBranchImm { lhs, .. }
        | Instr::FCmpBranchImm { lhs, .. }
        | Instr::IWhileCmpImm { lhs, .. } => f(lhs),
        Instr::IForTest { counter, hi, var, .. } => {
            f(counter);
            f(hi);
            f(var);
        }
        Instr::ISeek { dst, lo, hi, key, .. } => {
            f(dst);
            f(lo);
            f(hi);
            f(key);
        }
        // Vectorized kernel ops (inserted after this pass runs, but the
        // operand enumeration stays authoritative): the loop counter and
        // bound registers, plus every row-base register.
        Instr::VFillStoreF64 { base, counter, hi, .. } => {
            vbase_reg(base, f);
            f(counter);
            f(hi);
        }
        Instr::VMapF64 { dst_base, a_base, rhs, counter, hi, .. } => {
            vbase_reg(dst_base, f);
            vbase_reg(a_base, f);
            if let VRhs::Buf { base, .. } = rhs {
                vbase_reg(base, f);
            }
            f(counter);
            f(hi);
        }
        Instr::VMulAddF64 { a_base, b_base, counter, hi, .. } => {
            vbase_reg(a_base, f);
            vbase_reg(b_base, f);
            f(counter);
            f(hi);
        }
        Instr::VReduceF64 { base, counter, hi, .. } => {
            vbase_reg(base, f);
            f(counter);
            f(hi);
        }
        Instr::VAppendRangeF64 { base, counter, hi, .. } => {
            vbase_reg(base, f);
            f(counter);
            f(hi);
        }
        Instr::VCmpSelectU8 { dst_base, src_base, counter, hi, .. } => {
            vbase_reg(dst_base, f);
            vbase_reg(src_base, f);
            f(counter);
            f(hi);
        }
    }
}

/// Visit the register of a [`VBase::Scaled`] index shape, if any.
fn vbase_reg(base: &mut VBase, f: &mut dyn FnMut(&mut Reg)) {
    if let VBase::Scaled { reg, .. } = base {
        f(reg);
    }
}

/// Whether a [`VBase`] reads the given register.
fn vbase_reads(base: VBase, r: Reg) -> bool {
    matches!(base, VBase::Scaled { reg, .. } if reg == r)
}

/// The register an instruction writes, if any.
fn writes(instr: Instr) -> Option<Reg> {
    match instr {
        Instr::Const { dst, .. }
        | Instr::Mov { dst, .. }
        | Instr::BufLen { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::Unary { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::Seek { dst, .. }
        | Instr::BinaryImm { dst, .. }
        | Instr::LoadBinary { dst, .. } => Some(dst),
        Instr::CoerceInt { reg } => Some(reg),
        Instr::ForTest { var, .. } => Some(var),
        Instr::ForStep { counter, .. } => Some(counter),
        Instr::ConstI { dst, .. }
        | Instr::ConstF { dst, .. }
        | Instr::IMov { dst, .. }
        | Instr::FMov { dst, .. }
        | Instr::ILen { dst, .. }
        | Instr::LoadI64 { dst, .. }
        | Instr::LoadF64 { dst, .. }
        | Instr::LoadU8 { dst, .. }
        | Instr::FMulLoad { dst, .. }
        | Instr::IArith { dst, .. }
        | Instr::FArith { dst, .. }
        | Instr::IArithImm { dst, .. }
        | Instr::FArithImm { dst, .. }
        | Instr::FRound { dst, .. }
        | Instr::ISeek { dst, .. } => Some(dst),
        Instr::IForTest { var, .. } => Some(var),
        // The vectorized kernel ops advance the loop counter.
        Instr::VFillStoreF64 { counter, .. }
        | Instr::VMapF64 { counter, .. }
        | Instr::VMulAddF64 { counter, .. }
        | Instr::VReduceF64 { counter, .. }
        | Instr::VAppendRangeF64 { counter, .. }
        | Instr::VCmpSelectU8 { counter, .. } => Some(counter),
        _ => None,
    }
}

/// Allocation-free variant of [`reads`]`.contains(&r)` for the hot
/// liveness scan.
fn reads_reg(instr: Instr, r: Reg) -> bool {
    match instr {
        Instr::Mov { src, .. } => src == r,
        Instr::Load { idx, .. } => idx == r,
        Instr::CoerceInt { reg } => reg == r,
        Instr::Store { idx, val, .. } => idx == r || val == r,
        Instr::Unary { src, .. } => src == r,
        Instr::Binary { lhs, rhs, .. } => lhs == r || rhs == r,
        Instr::JumpIfFalse { src, .. }
        | Instr::JumpIfTrue { src, .. }
        | Instr::JumpIfMissing { src, .. }
        | Instr::JumpIfNotMissing { src, .. } => src == r,
        Instr::WhileTest { cond, .. } => cond == r,
        Instr::ForTest { counter, hi, .. } => counter == r || hi == r,
        Instr::ForStep { counter, .. } => counter == r,
        Instr::Append { val, .. } => val == r,
        Instr::Seek { lo, hi, key, .. } => lo == r || hi == r || key == r,
        Instr::BinaryImm { lhs, .. } => lhs == r,
        Instr::LoadBinary { lhs, idx, .. } => lhs == r || idx == r,
        Instr::CmpBranch { lhs, rhs, .. } => lhs == r || rhs == r,
        Instr::CmpBranchImm { lhs, .. } => lhs == r,
        Instr::WhileCmp { lhs, rhs, .. } => lhs == r || rhs == r,
        Instr::WhileCmpImm { lhs, .. } => lhs == r,
        Instr::BumpStmt
        | Instr::Const { .. }
        | Instr::BufLen { .. }
        | Instr::Jump { .. }
        | Instr::FiberEnd { .. } => false,
        Instr::IMov { src, .. } | Instr::FMov { src, .. } | Instr::FRound { src, .. } => src == r,
        Instr::LoadI64 { idx, .. } | Instr::LoadF64 { idx, .. } | Instr::LoadU8 { idx, .. } => {
            idx == r
        }
        Instr::FMulLoad { lhs, idx, .. } => lhs == r || idx == r,
        Instr::StoreF64 { idx, val, .. } | Instr::StoreU8 { idx, val, .. } => idx == r || val == r,
        Instr::IAppend { val, .. } | Instr::FAppend { val, .. } => val == r,
        Instr::IArith { lhs, rhs, .. }
        | Instr::FArith { lhs, rhs, .. }
        | Instr::ICmpBranch { lhs, rhs, .. }
        | Instr::FCmpBranch { lhs, rhs, .. }
        | Instr::IWhileCmp { lhs, rhs, .. }
        | Instr::FWhileCmp { lhs, rhs, .. } => lhs == r || rhs == r,
        Instr::IArithImm { lhs, .. }
        | Instr::FArithImm { lhs, .. }
        | Instr::ICmpBranchImm { lhs, .. }
        | Instr::FCmpBranchImm { lhs, .. }
        | Instr::IWhileCmpImm { lhs, .. } => lhs == r,
        Instr::IForTest { counter, hi, .. } => counter == r || hi == r,
        Instr::ISeek { lo, hi, key, .. } => lo == r || hi == r || key == r,
        Instr::Nop | Instr::ConstI { .. } | Instr::ConstF { .. } | Instr::ILen { .. } => false,
        Instr::VFillStoreF64 { base, counter, hi, .. } => {
            vbase_reads(base, r) || counter == r || hi == r
        }
        Instr::VMapF64 { dst_base, a_base, rhs, counter, hi, .. } => {
            let rhs_reads = matches!(rhs, VRhs::Buf { base, .. } if vbase_reads(base, r));
            vbase_reads(dst_base, r)
                || vbase_reads(a_base, r)
                || rhs_reads
                || counter == r
                || hi == r
        }
        Instr::VMulAddF64 { a_base, b_base, counter, hi, .. } => {
            vbase_reads(a_base, r) || vbase_reads(b_base, r) || counter == r || hi == r
        }
        Instr::VReduceF64 { base, counter, hi, .. } => {
            vbase_reads(base, r) || counter == r || hi == r
        }
        Instr::VAppendRangeF64 { base, counter, hi, .. } => {
            vbase_reads(base, r) || counter == r || hi == r
        }
        Instr::VCmpSelectU8 { dst_base, src_base, counter, hi, .. } => {
            vbase_reads(dst_base, r) || vbase_reads(src_base, r) || counter == r || hi == r
        }
    }
}

/// Whether `t` is dead after position `from`: no instruction reads it
/// before it is next written (reads are checked first — an instruction
/// that both reads and writes `t` keeps it alive).
fn dead_after(code: &[Instr], from: usize, t: Reg) -> bool {
    for instr in &code[from..] {
        if reads_reg(*instr, t) {
            return false;
        }
        if writes(*instr) == Some(t) {
            return true;
        }
    }
    true
}

/// Rewrite reads of `t` in `instr` to `src`, but only in operand positions
/// whose execution errors on an unset register — forwarding must not turn
/// an unbound-variable error into silent control flow.  Returns `None`
/// when the instruction does not read `t` in such a position.
fn forward_operand(instr: Instr, t: Reg, src: Reg) -> Option<Instr> {
    let sub = |r: Reg| if r == t { src } else { r };
    match instr {
        Instr::Mov { dst, src: s } if s == t => Some(Instr::Mov { dst, src }),
        Instr::Load { dst, buf, idx } if idx == t => Some(Instr::Load { dst, buf, idx: src }),
        Instr::Store { buf, idx, val, reduce } if val == t && idx != t => {
            Some(Instr::Store { buf, idx, val: src, reduce })
        }
        Instr::Unary { op, dst, src: s } if s == t => Some(Instr::Unary { op, dst, src }),
        Instr::Binary { op, dst, lhs, rhs } if lhs == t || rhs == t => {
            Some(Instr::Binary { op, dst, lhs: sub(lhs), rhs: sub(rhs) })
        }
        Instr::BinaryImm { op, dst, lhs, cidx } if lhs == t => {
            Some(Instr::BinaryImm { op, dst, lhs: src, cidx })
        }
        Instr::LoadBinary { op, dst, lhs, buf, idx } if lhs == t || idx == t => {
            Some(Instr::LoadBinary { op, dst, lhs: sub(lhs), buf, idx: sub(idx) })
        }
        Instr::Append { buf, val } if val == t => Some(Instr::Append { buf, val: src }),
        Instr::JumpIfFalse { src: s, target, strict } if s == t => {
            Some(Instr::JumpIfFalse { src, target, strict })
        }
        Instr::JumpIfTrue { src: s, target } if s == t => Some(Instr::JumpIfTrue { src, target }),
        Instr::WhileTest { cond, end } if cond == t => Some(Instr::WhileTest { cond: src, end }),
        Instr::CmpBranch { op, lhs, rhs, target, strict } if lhs == t || rhs == t => {
            Some(Instr::CmpBranch { op, lhs: sub(lhs), rhs: sub(rhs), target, strict })
        }
        Instr::CmpBranchImm { op, lhs, cidx, target, strict } if lhs == t => {
            Some(Instr::CmpBranchImm { op, lhs: src, cidx, target, strict })
        }
        Instr::WhileCmp { op, lhs, rhs, end } if lhs == t || rhs == t => {
            Some(Instr::WhileCmp { op, lhs: sub(lhs), rhs: sub(rhs), end })
        }
        Instr::WhileCmpImm { op, lhs, cidx, end } if lhs == t => {
            Some(Instr::WhileCmpImm { op, lhs: src, cidx, end })
        }
        // CoerceInt mutates its register in place; Seek/ForTest read raw
        // integer lanes; JumpIf(Not)Missing does not fault on unset.  None
        // of those may receive a forwarded operand.
        _ => None,
    }
}

/// What a fused pair replaces: the superinstruction plus bookkeeping.
enum Fused {
    /// `Mov` forwarding: the consumer with the temp replaced by the source.
    Forward(Instr),
    /// A genuine superinstruction.
    Super(Instr),
}

/// Rewrite the destination of a value-producing instruction.  Only
/// instructions that unconditionally write a fresh value to `dst` (and do
/// not also read it) qualify; the caller has already checked the original
/// destination is an otherwise-dead temp.
fn retarget_dst(instr: Instr, dst: Reg) -> Option<Instr> {
    Some(match instr {
        Instr::Const { cidx, .. } => Instr::Const { dst, cidx },
        Instr::Mov { src, .. } => Instr::Mov { dst, src },
        Instr::BufLen { buf, .. } => Instr::BufLen { dst, buf },
        Instr::Load { buf, idx, .. } => Instr::Load { dst, buf, idx },
        Instr::Unary { op, src, .. } => Instr::Unary { op, dst, src },
        Instr::Binary { op, lhs, rhs, .. } => Instr::Binary { op, dst, lhs, rhs },
        Instr::BinaryImm { op, lhs, cidx, .. } => Instr::BinaryImm { op, dst, lhs, cidx },
        Instr::LoadBinary { op, lhs, buf, idx, .. } => Instr::LoadBinary { op, dst, lhs, buf, idx },
        Instr::Seek { buf, lo, hi, key, on_abs, .. } => {
            Instr::Seek { dst, buf, lo, hi, key, on_abs }
        }
        _ => return None,
    })
}

/// Try to fuse the adjacent pair `(a, b)`; `after` is the index of the
/// first instruction past the pair, used for temp liveness.
fn try_fuse(a: Instr, b: Instr, code: &[Instr], after: usize, num_vars: usize) -> Option<Fused> {
    let is_temp = |r: Reg| r.index() >= num_vars;
    // The forwarded/fused temp must not be observable afterwards, unless
    // the consumer itself redefines it.
    let consumed = |t: Reg| is_temp(t) && (writes(b) == Some(t) || dead_after(code, after, t));

    // Operand forwarding: `Mov t, src ; I(reads t)` → `I(reads src)`.
    if let Instr::Mov { dst: t, src } = a {
        if src != t && consumed(t) {
            if let Some(instr) = forward_operand(b, t, src) {
                return Some(Fused::Forward(instr));
            }
        }
    }
    // Destination forwarding: `I(writes t) ; Mov dst, t` → `I(writes dst)`
    // — collapses the temp chain every self-referential assignment emits.
    if let Instr::Mov { dst, src: t } = b {
        if dst != t
            && writes(a) == Some(t)
            && is_temp(t)
            && !reads_reg(a, t)
            && dead_after(code, after, t)
        {
            if let Some(instr) = retarget_dst(a, dst) {
                return Some(Fused::Forward(instr));
            }
        }
    }
    let fused = match (a, b) {
        (Instr::Const { dst: t, cidx }, Instr::Binary { op, dst, lhs, rhs })
            if rhs == t && lhs != t && consumed(t) =>
        {
            Instr::BinaryImm { op, dst, lhs, cidx }
        }
        (Instr::Load { dst: t, buf, idx }, Instr::Binary { op, dst, lhs, rhs })
            if rhs == t && lhs != t && idx != t && consumed(t) =>
        {
            Instr::LoadBinary { op, dst, lhs, buf, idx }
        }
        (Instr::Binary { op, dst: t, lhs, rhs }, Instr::JumpIfFalse { src, target, strict })
            if src == t && is_cmp(op) && is_temp(t) && dead_after(code, after, t) =>
        {
            Instr::CmpBranch { op, lhs, rhs, target, strict }
        }
        (
            Instr::BinaryImm { op, dst: t, lhs, cidx },
            Instr::JumpIfFalse { src, target, strict },
        ) if src == t && is_cmp(op) && is_temp(t) && dead_after(code, after, t) => {
            Instr::CmpBranchImm { op, lhs, cidx, target, strict }
        }
        (Instr::Binary { op, dst: t, lhs, rhs }, Instr::WhileTest { cond, end })
            if cond == t && is_cmp(op) && is_temp(t) && dead_after(code, after, t) =>
        {
            Instr::WhileCmp { op, lhs, rhs, end }
        }
        (Instr::BinaryImm { op, dst: t, lhs, cidx }, Instr::WhileTest { cond, end })
            if cond == t && is_cmp(op) && is_temp(t) && dead_after(code, after, t) =>
        {
            Instr::WhileCmpImm { op, lhs, cidx, end }
        }
        _ => return None,
    };
    Some(Fused::Super(fused))
}

/// One fusion round over the whole program.  Returns the rewritten program
/// and whether anything changed.
fn fuse_round(p: &Program, stats: &mut OptStats) -> (Program, bool) {
    let code = &p.code;
    let targets = jump_targets(code);
    let num_vars = p.num_vars();
    let mut new_code: Vec<Instr> = Vec::with_capacity(code.len());
    // `map[old_pc]` = new pc of the instruction that carries old_pc's
    // semantics (for a fused pair, both halves map to the fused position).
    let mut map: Vec<u32> = Vec::with_capacity(code.len() + 1);
    let mut changed = false;
    let mut i = 0usize;
    while i < code.len() {
        let fused = code
            .get(i + 1)
            // Never fuse into a jump target: entering between the halves
            // must stay possible.
            .filter(|_| !targets.contains(&((i + 1) as u32)))
            .and_then(|&b| try_fuse(code[i], b, code, i + 2, num_vars));
        match fused {
            Some(kind) => {
                let instr = match kind {
                    Fused::Forward(instr) => {
                        stats.movs_eliminated += 1;
                        instr
                    }
                    Fused::Super(instr) => {
                        stats.instrs_fused += 1;
                        instr
                    }
                };
                map.push(new_code.len() as u32);
                map.push(new_code.len() as u32);
                new_code.push(instr);
                changed = true;
                i += 2;
            }
            None => {
                map.push(new_code.len() as u32);
                new_code.push(code[i]);
                i += 1;
            }
        }
    }
    // A target may be one past the last instruction (loop ends).
    map.push(new_code.len() as u32);
    for instr in &mut new_code {
        retarget(instr, &map);
    }
    let new_program = Program {
        code: new_code,
        consts: p.consts.clone(),
        var_names: p.var_names.clone(),
        num_regs: p.num_regs,
        pretags: p.pretags.clone(),
        shard_plan: p.shard_plan.clone(),
    };
    (new_program, changed)
}

fn retarget(instr: &mut Instr, map: &[u32]) {
    match instr {
        Instr::Jump { target }
        | Instr::JumpIfFalse { target, .. }
        | Instr::JumpIfTrue { target, .. }
        | Instr::JumpIfMissing { target, .. }
        | Instr::JumpIfNotMissing { target, .. }
        | Instr::CmpBranch { target, .. }
        | Instr::CmpBranchImm { target, .. }
        | Instr::ICmpBranch { target, .. }
        | Instr::ICmpBranchImm { target, .. }
        | Instr::FCmpBranch { target, .. }
        | Instr::FCmpBranchImm { target, .. } => *target = map[*target as usize],
        Instr::WhileTest { end, .. }
        | Instr::ForTest { end, .. }
        | Instr::WhileCmp { end, .. }
        | Instr::WhileCmpImm { end, .. }
        | Instr::IWhileCmp { end, .. }
        | Instr::IWhileCmpImm { end, .. }
        | Instr::FWhileCmp { end, .. }
        | Instr::IForTest { end, .. } => *end = map[*end as usize],
        Instr::ForStep { test, .. } => *test = map[*test as usize],
        _ => {}
    }
}

/// Renumber surviving temp registers into a dense range just above the
/// variable registers (which keep their [`crate::var::Var`]-indexed slots).
fn compact_registers(p: &mut Program, stats: &mut OptStats) {
    let num_vars = p.num_vars();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for instr in &p.code {
        let mut probe = *instr;
        for_each_reg(&mut probe, &mut |r| {
            if r.index() >= num_vars {
                used.insert(r.index());
            }
        });
    }
    let remap: HashMap<usize, u32> =
        used.iter().enumerate().map(|(rank, &old)| (old, (num_vars + rank) as u32)).collect();
    let new_num_regs = num_vars + used.len();
    if new_num_regs < p.num_regs {
        stats.regs_saved += (p.num_regs - new_num_regs) as u64;
    }
    for instr in &mut p.code {
        for_each_reg(instr, &mut |r| {
            if r.index() >= num_vars {
                *r = Reg(remap[&r.index()]);
            }
        });
    }
    // Pretags (if the typing pass ever ran before compaction) follow the
    // same renumbering; pretags of dropped temps are dropped with them.
    p.pretags.retain(|(r, _)| r.index() < num_vars || remap.contains_key(&r.index()));
    for (r, _) in &mut p.pretags {
        if r.index() >= num_vars {
            *r = Reg(remap[&r.index()]);
        }
    }
    p.num_regs = new_num_regs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::expr::Expr;
    use crate::interp::ExecStats;
    use crate::stmt::Stmt;
    use crate::var::Names;
    use crate::vm::Vm;

    fn optimize(program: &Program) -> (Program, OptStats) {
        let mut stats = OptStats::default();
        let p = peephole(program, &mut stats);
        p.validate().expect("peepholed program validates");
        (p, stats)
    }

    /// Run raw and peepholed programs and assert bit-identical buffers and
    /// work counters.
    fn assert_peephole_parity(prog: &[Stmt], names: &Names, bufs: &BufferSet) -> OptStats {
        let raw = Program::compile(prog, names);
        raw.validate().expect("raw program validates");
        let (opt, stats) = optimize(&raw);

        let run = |p: &Program| -> (BufferSet, ExecStats) {
            let mut bufs = bufs.clone();
            let mut vm = Vm::new(p);
            vm.run(p, &mut bufs).expect("program runs");
            (bufs, vm.stats())
        };
        let (raw_bufs, raw_stats) = run(&raw);
        let (opt_bufs, opt_stats) = run(&opt);
        assert_eq!(raw_stats, opt_stats, "work counters diverge");
        for (id, name, buf) in raw_bufs.iter() {
            assert_eq!(buf, opt_bufs.get(id), "buffer {name} diverges");
        }
        stats
    }

    /// `while p < n { out[0] += x[p]; p = p + 1 }`: the classic merge-loop
    /// shape.  Fusion must produce a `WhileCmp`, a `BinaryImm` (the `p + 1`
    /// increment) and eliminate the operand `Mov`s, with identical results.
    #[test]
    fn merge_loop_shape_fuses_and_stays_bit_identical() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let p = names.fresh("p");
        let n = names.fresh("n");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::Let { var: n, init: Expr::int(4) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::Var(n)),
                body: vec![
                    Stmt::Store {
                        buf: out,
                        index: Expr::int(0),
                        value: Expr::load(x, Expr::Var(p)),
                        reduce: Some(BinOp::Add),
                    },
                    Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) },
                ],
            },
        ];
        let stats = assert_peephole_parity(&prog, &names, &bufs);
        assert!(stats.movs_eliminated > 0, "{stats:?}");
        assert!(stats.instrs_fused > 0, "{stats:?}");

        let raw = Program::compile(&prog, &names);
        let (opt, _) = optimize(&raw);
        assert!(opt.code().len() < raw.code().len(), "fewer dispatches");
        assert!(opt.num_regs() <= raw.num_regs(), "register file never grows");
        let has = |pred: &dyn Fn(&Instr) -> bool| opt.code().iter().any(pred);
        assert!(has(&|i| matches!(i, Instr::WhileCmp { .. })), "\n{}", opt.disasm());
        assert!(has(&|i| matches!(i, Instr::BinaryImm { .. })), "\n{}", opt.disasm());
    }

    /// `if x[i] != 0 { ... }` compiles to Load + Binary + JumpIfFalse; the
    /// pass must produce a LoadBinary or CmpBranch chain while counting the
    /// load exactly once.
    #[test]
    fn guarded_load_fuses_with_exact_load_counts() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![0.0, 1.5, 0.0, 2.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::if_then(
                Expr::binary(BinOp::Ne, Expr::load(x, Expr::Var(i)), Expr::float(0.0)),
                vec![Stmt::Store {
                    buf: out,
                    index: Expr::int(0),
                    value: Expr::load(x, Expr::Var(i)),
                    reduce: Some(BinOp::Add),
                }],
            )],
        }];
        let stats = assert_peephole_parity(&prog, &names, &bufs);
        assert!(stats.instrs_fused > 0, "{stats:?}");
    }

    #[test]
    fn jump_targets_are_never_fused_over() {
        // select writes its destination on two paths that join at the
        // consumer; the consumer is a jump target and must not absorb the
        // else-path Mov.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let a = names.fresh("a");
        let b = names.fresh("b");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(7) },
            Stmt::Let { var: b, init: Expr::int(3) },
            Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::add(
                    Expr::Var(b),
                    Expr::select(
                        Expr::lt(Expr::Var(a), Expr::int(5)),
                        Expr::int(100),
                        Expr::Var(a),
                    ),
                ),
                reduce: None,
            },
        ];
        assert_peephole_parity(&prog, &names, &bufs);
    }

    #[test]
    fn seek_heavy_code_survives_fusion() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![1, 4, 4, 9, 12].into()));
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let v = names.fresh("v");
        let prog = vec![
            Stmt::Let {
                var: v,
                init: Expr::Search {
                    buf: idx,
                    lo: Box::new(Expr::int(0)),
                    hi: Box::new(Expr::int(4)),
                    key: Box::new(Expr::int(10)),
                    on_abs: false,
                },
            },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(v), reduce: None },
        ];
        assert_peephole_parity(&prog, &names, &bufs);
    }

    #[test]
    fn short_circuit_and_coalesce_survive_fusion() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::I64(vec![3].into()));
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let q = names.fresh("q");
        let prog = vec![
            Stmt::Let { var: q, init: Expr::int(5) },
            Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::select(
                    Expr::binary(
                        BinOp::And,
                        Expr::lt(Expr::Var(q), Expr::int(1)),
                        Expr::eq(Expr::load(x, Expr::Var(q)), Expr::int(3)),
                    ),
                    Expr::int(1),
                    Expr::Coalesce(vec![Expr::missing(), Expr::Var(q)]),
                ),
                reduce: None,
            },
        ];
        assert_peephole_parity(&prog, &names, &bufs);
    }

    #[test]
    fn register_compaction_shrinks_the_file() {
        let mut names = Names::new();
        let a = names.fresh("a");
        // Deeply nested constant expression: the raw compiler allocates a
        // LIFO tower of temps, most of which die after fusion.
        let deep = Expr::add(
            Expr::add(Expr::int(1), Expr::int(2)),
            Expr::add(Expr::int(3), Expr::add(Expr::int(4), Expr::int(5))),
        );
        let prog = vec![Stmt::Let { var: a, init: deep }];
        let raw = Program::compile(&prog, &names);
        let (opt, stats) = optimize(&raw);
        assert!(opt.num_regs() < raw.num_regs(), "{} -> {}", raw.num_regs(), opt.num_regs());
        assert!(stats.regs_saved > 0);
    }

    /// Golden disassembly of the fused merge-loop head: any change to the
    /// superinstruction encodings (operand order, fusion choices) shows up
    /// as a diff here.
    #[test]
    fn golden_disasm_of_fused_while_head() {
        let mut names = Names::new();
        let p = names.fresh("p");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(3)),
                body: vec![Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) }],
            },
        ];
        let raw = Program::compile(&prog, &names);
        let (opt, _) = optimize(&raw);
        let expected = "   0: stmt
   1: p = const 0
   2: stmt
   3: while p < const 3 else -> 7
   4: stmt
   5: p = p + const 1
   6: jump -> 3
";
        assert_eq!(opt.disasm(), expected, "\nraw was:\n{}", raw.disasm());
    }

    #[test]
    fn unbound_variable_errors_are_preserved() {
        // `let a = mystery + 1` with mystery unbound must still fail with
        // the unbound-variable error after Mov forwarding.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let a = names.fresh("a");
        let mystery = names.fresh("mystery");
        let prog = vec![Stmt::Let { var: a, init: Expr::add(Expr::Var(mystery), Expr::int(1)) }];
        let raw = Program::compile(&prog, &names);
        let (opt, _) = optimize(&raw);
        let mut vm = Vm::new(&opt);
        let err = vm.run(&opt, &mut bufs).unwrap_err();
        match err {
            crate::error::RuntimeError::UnboundVariable { name } => assert_eq!(name, "mystery"),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
