//! Vectorized kernel-op selection over typed bytecode.
//!
//! The typing pass leaves the hot inner loops of dense kernels as short
//! straight-line typed bodies under an [`Instr::IForTest`] head: a
//! `BumpStmt`, a handful of loads and float ops, and a store or append.
//! The VM still pays one dispatch per instruction per iteration.  This
//! pass recognises those canonical loop shapes symbolically and inserts
//! one vectorized kernel op ([`Instr::VFillStoreF64`],
//! [`Instr::VMapF64`], [`Instr::VMulAddF64`], [`Instr::VReduceF64`],
//! [`Instr::VAppendRangeF64`], [`Instr::VCmpSelectU8`]) immediately
//! *before* the loop head, which executes all but the final iteration
//! over whole buffer slices with no per-element dispatch.
//!
//! The transformation is strictly additive:
//!
//! * The scalar loop is left completely untouched.  The kernel op
//!   advances the loop counter to the inclusive upper bound, so the
//!   scalar loop runs exactly the last iteration — which doubles as the
//!   remainder handler and rewrites every temporary register with its
//!   final-iteration value, exactly as a full scalar run would have.
//! * Jump targets are remapped so every branch (including the loop's
//!   own back-edge) lands on the *original* instruction, never on the
//!   inserted kernel op.  The op executes only when control falls
//!   through from the loop pre-header, i.e. exactly once per entry.
//! * At runtime the op re-checks every precondition (buffer kinds,
//!   full-slice bounds, aliasing, the step budget) and does *nothing*
//!   when any fails — the scalar loop is always the fallback, so a
//!   vectorized program can never do worse than reject its own bulk.
//!
//! The match is deliberately conservative.  A loop is taken only when
//! the whole body is understood: every instruction is on a small
//! whitelist, every store and append resolves to a symbolic shape one
//! of the six kernel ops encodes exactly (including evaluation order
//! and operand orientation, which matter for float bit-exactness), and
//! every load is represented in the emitted op (a load the op would
//! not perform could hide an out-of-bounds fault the scalar loop
//! raises).  Loops the matcher declines run scalar, unchanged.
//!
//! Work counters stay bit-identical: each op carries the
//! scalar-equivalent [`crate::bytecode::VCost`] per iteration (and per
//! *passing* iteration for the guarded forms), so
//! [`crate::interp::ExecStats`] cannot distinguish vectorized from
//! scalar execution — which is what lets the pass run under the
//! [`super::StatsContract::Exact`] translation-validation contract.

use std::collections::{HashMap, HashSet};

use crate::buffer::BufId;
use crate::bytecode::{is_arith_reduce, is_cmp_op, is_float_arith};
use crate::bytecode::{Instr, Program, Reg, VBase, VCost, VRhs, VScale};
use crate::expr::BinOp;

use super::OptStats;

/// Insert vectorized kernel ops before every innermost typed counted
/// loop whose body matches one of the canonical dense shapes.  Counts
/// every examined innermost loop's body length into
/// [`OptStats::instrs_vectorizable`] and the matched ones into
/// [`OptStats::instrs_vectorized`].
pub fn vectorize(p: &Program, stats: &mut OptStats) -> Program {
    let code = &p.code;
    let mut inserts: HashMap<usize, Instr> = HashMap::new();
    for (head, instr) in code.iter().enumerate() {
        let Instr::IForTest { counter, hi, var, end } = *instr else { continue };
        let end = end as usize;
        // The canonical counted-loop layout: head, body, back-edge.
        if end < head + 2 || end > code.len() {
            continue;
        }
        let Instr::ForStep { counter: step_counter, test } = code[end - 1] else { continue };
        if step_counter != counter || test as usize != head {
            continue;
        }
        let body = &code[head + 1..end - 1];
        if body.iter().any(is_loop_head) {
            continue; // not innermost
        }
        stats.instrs_vectorizable += body.len() as u64;
        if let Some(vop) = match_loop(body, (end - 1) as u32, counter, hi, var) {
            stats.instrs_vectorized += body.len() as u64;
            inserts.insert(head, vop);
        }
    }
    if inserts.is_empty() {
        return p.clone();
    }
    // Rebuild with each kernel op spliced in before its loop head.  Every
    // old pc maps to the new position of the *original* instruction, so
    // all jumps (the back-edge included) bypass the inserted op.
    let mut new_code = Vec::with_capacity(code.len() + inserts.len());
    let mut map = Vec::with_capacity(code.len() + 1);
    for (pc, instr) in code.iter().enumerate() {
        if let Some(vop) = inserts.get(&pc) {
            new_code.push(*vop);
        }
        map.push(new_code.len() as u32);
        new_code.push(*instr);
    }
    // A target may be one past the last instruction (loop ends).
    map.push(new_code.len() as u32);
    for instr in &mut new_code {
        retarget(instr, &map);
    }
    Program {
        code: new_code,
        consts: p.consts.clone(),
        var_names: p.var_names.clone(),
        num_regs: p.num_regs,
        pretags: p.pretags.clone(),
        shard_plan: p.shard_plan.clone(),
    }
}

/// Whether the instruction starts or closes a loop (anything that makes
/// the surrounding counted loop non-innermost).
fn is_loop_head(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::ForTest { .. }
            | Instr::IForTest { .. }
            | Instr::ForStep { .. }
            | Instr::WhileTest { .. }
            | Instr::WhileCmp { .. }
            | Instr::WhileCmpImm { .. }
            | Instr::IWhileCmp { .. }
            | Instr::IWhileCmpImm { .. }
            | Instr::FWhileCmp { .. }
    )
}

fn retarget(instr: &mut Instr, map: &[u32]) {
    match instr {
        Instr::Jump { target }
        | Instr::JumpIfFalse { target, .. }
        | Instr::JumpIfTrue { target, .. }
        | Instr::JumpIfMissing { target, .. }
        | Instr::JumpIfNotMissing { target, .. }
        | Instr::CmpBranch { target, .. }
        | Instr::CmpBranchImm { target, .. }
        | Instr::ICmpBranch { target, .. }
        | Instr::ICmpBranchImm { target, .. }
        | Instr::FCmpBranch { target, .. }
        | Instr::FCmpBranchImm { target, .. } => *target = map[*target as usize],
        Instr::WhileTest { end, .. }
        | Instr::ForTest { end, .. }
        | Instr::WhileCmp { end, .. }
        | Instr::WhileCmpImm { end, .. }
        | Instr::IWhileCmp { end, .. }
        | Instr::IWhileCmpImm { end, .. }
        | Instr::FWhileCmp { end, .. }
        | Instr::IForTest { end, .. } => *end = map[*end as usize],
        Instr::ForStep { test, .. } => *test = map[*test as usize],
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Symbolic shapes of the values a canonical loop body computes, as a
// function of the bulk iteration `v` (the loop counter's value).
// ---------------------------------------------------------------------

/// An integer value: the counter, a literal, a loop-invariant register,
/// or the affine forms a [`VBase`] can encode.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ISym {
    /// The loop counter `v` itself (the loop variable reads as this too).
    Counter,
    /// A literal.
    Const(i64),
    /// A loop-invariant integer register, read as-is.
    Inv(Reg),
    /// `inv * stride` — a row base, waiting for `+ v`.
    Scaled { reg: Reg, stride: i64 },
    /// `inv * stride + v` — a full row-major element index.
    ScaledVar { reg: Reg, stride: i64 },
}

/// One pre-scaled load: `pre(buf[base + v])`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LoadSym {
    buf: BufId,
    base: VBase,
    pre: VScale,
}

/// A float map value: `post(pre(a[..]) rhs)` — exactly the value shape
/// of one [`Instr::VMapF64`] iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MapSym {
    a: LoadSym,
    rhs: VRhs,
    round: bool,
}

/// A float value: a literal or a map shape.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FSym {
    Const(f64),
    Map(MapSym),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Sym {
    I(ISym),
    F(FSym),
}

/// One store or append the body performs per iteration, in order.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Effect {
    StoreF { buf: BufId, idx: ISym, val: FSym, reduce: Option<BinOp> },
    StoreU { buf: BufId, idx: ISym, val: FSym, reduce: Option<BinOp> },
    AppendI { buf: BufId, val: ISym },
    AppendF { buf: BufId, val: FSym },
}

/// [`VCost`] accumulator wide enough to never overflow while matching.
#[derive(Debug, Clone, Copy, Default)]
struct CostAcc {
    stmts: u32,
    loads: u32,
    stores: u32,
}

impl CostAcc {
    fn to_vcost(self) -> Option<VCost> {
        Some(VCost {
            stmts: u8::try_from(self.stmts).ok()?,
            loads: u8::try_from(self.loads).ok()?,
            stores: u8::try_from(self.stores).ok()?,
        })
    }
}

const ZERO_COST: VCost = VCost { stmts: 0, loads: 0, stores: 0 };

/// The registers a whitelisted body instruction writes, or `None` when
/// the instruction is not on the whitelist (which rejects the loop).
fn whitelisted_writes(instr: &Instr, writes: &mut HashSet<Reg>) -> bool {
    match *instr {
        Instr::Nop
        | Instr::BumpStmt
        | Instr::StoreF64 { .. }
        | Instr::StoreU8 { .. }
        | Instr::IAppend { .. }
        | Instr::FAppend { .. }
        | Instr::FCmpBranchImm { .. } => true,
        Instr::ConstI { dst, .. }
        | Instr::ConstF { dst, .. }
        | Instr::IMov { dst, .. }
        | Instr::FMov { dst, .. }
        | Instr::IArith { dst, .. }
        | Instr::IArithImm { dst, .. }
        | Instr::FArith { dst, .. }
        | Instr::FArithImm { dst, .. }
        | Instr::FRound { dst, .. }
        | Instr::LoadF64 { dst, .. }
        | Instr::FMulLoad { dst, .. } => {
            writes.insert(dst);
            true
        }
        _ => false,
    }
}

/// Match one innermost counted loop body against the kernel-op shapes.
/// `fstep_pc` is the loop's back-edge pc (the only in-loop branch target
/// a guard may use); `counter`/`hi`/`var` are the head's registers.
fn match_loop(body: &[Instr], fstep_pc: u32, counter: Reg, hi: Reg, var: Reg) -> Option<Instr> {
    // Pre-scan: whitelist only, and the loop's own registers stay
    // loop-invariant.
    let mut writes: HashSet<Reg> = HashSet::new();
    for instr in body {
        if !whitelisted_writes(instr, &mut writes) {
            return None;
        }
    }
    if writes.contains(&counter) || writes.contains(&hi) || writes.contains(&var) {
        return None;
    }

    // Abstract per-iteration state.  `defs` maps registers defined this
    // iteration to their symbolic value (`None` marks a value the
    // matcher cannot express — harmless unless something observable
    // reads it).  `guard` splits the body into the unconditional region
    // and the region executed only where the comparison holds.
    let mut defs: HashMap<Reg, Option<Sym>> = HashMap::new();
    let mut base_cost = CostAcc::default();
    let mut pass_cost = CostAcc::default();
    let mut base_effects: Vec<Effect> = Vec::new();
    let mut pass_effects: Vec<Effect> = Vec::new();
    let mut guard: Option<(BinOp, LoadSym, f64)> = None;

    let read_int = |defs: &HashMap<Reg, Option<Sym>>, writes: &HashSet<Reg>, r: Reg| {
        if r == var || r == counter {
            return Some(ISym::Counter);
        }
        match defs.get(&r) {
            Some(Some(Sym::I(s))) => Some(*s),
            Some(_) => None, // poisoned or float-typed
            // Written later in the body but not yet this iteration: a
            // loop-carried value the kernel ops cannot express.
            None if writes.contains(&r) => None,
            None => Some(ISym::Inv(r)),
        }
    };
    let read_float = |defs: &HashMap<Reg, Option<Sym>>, r: Reg| match defs.get(&r) {
        Some(Some(Sym::F(s))) => Some(*s),
        // Loop-invariant and loop-carried floats alike: no kernel op
        // encodes a register-valued float operand.
        _ => None,
    };
    let vbase_of = |s: ISym| match s {
        ISym::Counter => Some(VBase::Var),
        ISym::ScaledVar { reg, stride } if stride >= 1 => Some(VBase::Scaled { reg, stride }),
        _ => None,
    };

    for instr in body {
        let in_pass = guard.is_some();
        let cost = if in_pass { &mut pass_cost } else { &mut base_cost };
        let effects = if in_pass { &mut pass_effects } else { &mut base_effects };
        match *instr {
            Instr::Nop => {}
            Instr::BumpStmt => cost.stmts += 1,
            Instr::ConstI { dst, imm } => {
                defs.insert(dst, Some(Sym::I(ISym::Const(imm))));
            }
            Instr::ConstF { dst, imm } => {
                defs.insert(dst, Some(Sym::F(FSym::Const(imm))));
            }
            Instr::IMov { dst, src } => {
                let s = read_int(&defs, &writes, src).map(Sym::I);
                defs.insert(dst, s);
            }
            Instr::FMov { dst, src } => {
                let s = read_float(&defs, src).map(Sym::F);
                defs.insert(dst, s);
            }
            Instr::IArithImm { op, dst, lhs, imm } => {
                let sym = match (op, read_int(&defs, &writes, lhs)) {
                    // `row * stride`: the first half of a row-major index.
                    (BinOp::Mul, Some(ISym::Inv(reg))) if imm >= 1 => {
                        Some(ISym::Scaled { reg, stride: imm })
                    }
                    _ => None,
                };
                defs.insert(dst, sym.map(Sym::I));
            }
            Instr::IArith { op, dst, lhs, rhs } => {
                let l = read_int(&defs, &writes, lhs);
                let r = read_int(&defs, &writes, rhs);
                let sym = match (op, l, r) {
                    // `row * stride + v` in either operand order.
                    (BinOp::Add, Some(ISym::Scaled { reg, stride }), Some(ISym::Counter))
                    | (BinOp::Add, Some(ISym::Counter), Some(ISym::Scaled { reg, stride })) => {
                        Some(ISym::ScaledVar { reg, stride })
                    }
                    // `base + v` with unit stride (a hoisted row offset).
                    (BinOp::Add, Some(ISym::Inv(reg)), Some(ISym::Counter))
                    | (BinOp::Add, Some(ISym::Counter), Some(ISym::Inv(reg))) => {
                        Some(ISym::ScaledVar { reg, stride: 1 })
                    }
                    _ => None,
                };
                defs.insert(dst, sym.map(Sym::I));
            }
            Instr::LoadF64 { dst, buf, idx } => {
                cost.loads += 1;
                let sym = read_int(&defs, &writes, idx).and_then(vbase_of).map(|base| {
                    Sym::F(FSym::Map(MapSym {
                        a: LoadSym { buf, base, pre: VScale::None },
                        rhs: VRhs::None,
                        round: false,
                    }))
                });
                defs.insert(dst, sym);
            }
            Instr::FMulLoad { dst, lhs, buf, idx } => {
                cost.loads += 1;
                let base = read_int(&defs, &writes, idx).and_then(vbase_of);
                let sym = match (read_float(&defs, lhs), base) {
                    // `const * load`: the load with a left pre-scale.
                    (Some(FSym::Const(c)), Some(base)) => Some(FSym::Map(MapSym {
                        a: LoadSym { buf, base, pre: VScale::Left { op: BinOp::Mul, imm: c } },
                        rhs: VRhs::None,
                        round: false,
                    })),
                    // `load * load`: the dual-load map (and the inner
                    // product's elementwise half).
                    (Some(FSym::Map(m)), Some(base)) if m.rhs == VRhs::None && !m.round => {
                        Some(FSym::Map(MapSym {
                            a: m.a,
                            rhs: VRhs::Buf { op: BinOp::Mul, buf, base, pre: VScale::None },
                            round: false,
                        }))
                    }
                    _ => None,
                };
                defs.insert(dst, sym.map(Sym::F));
            }
            Instr::FArith { op, dst, lhs, rhs } => {
                let l = read_float(&defs, lhs);
                let r = read_float(&defs, rhs);
                let sym = match (l, r) {
                    // `pre_a(a[..]) op pre_b(b[..])` — the two-load map
                    // (the alpha blend's weighted sum).
                    (Some(FSym::Map(a)), Some(FSym::Map(b)))
                        if a.rhs == VRhs::None && !a.round && b.rhs == VRhs::None && !b.round =>
                    {
                        Some(FSym::Map(MapSym {
                            a: a.a,
                            rhs: VRhs::Buf { op, buf: b.a.buf, base: b.a.base, pre: b.a.pre },
                            round: false,
                        }))
                    }
                    // `map op const` — an immediate right operand.
                    (Some(FSym::Map(m)), Some(FSym::Const(c)))
                        if m.rhs == VRhs::None && !m.round =>
                    {
                        Some(FSym::Map(MapSym {
                            a: m.a,
                            rhs: VRhs::Imm { op, imm: c },
                            round: false,
                        }))
                    }
                    // `const op load` — a left pre-scale on a raw load.
                    (Some(FSym::Const(c)), Some(FSym::Map(m)))
                        if m.rhs == VRhs::None && !m.round && m.a.pre == VScale::None =>
                    {
                        Some(FSym::Map(MapSym {
                            a: LoadSym { pre: VScale::Left { op, imm: c }, ..m.a },
                            rhs: VRhs::None,
                            round: false,
                        }))
                    }
                    _ => None,
                };
                defs.insert(dst, sym.map(Sym::F));
            }
            Instr::FArithImm { op, dst, lhs, imm } => {
                let sym = match read_float(&defs, lhs) {
                    // `load op imm` folds into the pre-scale when the
                    // load is still raw, otherwise rides as `rhs`.
                    Some(FSym::Map(m)) if m.rhs == VRhs::None && !m.round => {
                        Some(if m.a.pre == VScale::None {
                            FSym::Map(MapSym {
                                a: LoadSym { pre: VScale::Right { op, imm }, ..m.a },
                                rhs: VRhs::None,
                                round: false,
                            })
                        } else {
                            FSym::Map(MapSym { a: m.a, rhs: VRhs::Imm { op, imm }, round: false })
                        })
                    }
                    _ => None,
                };
                defs.insert(dst, sym.map(Sym::F));
            }
            Instr::FRound { dst, src } => {
                let sym = match read_float(&defs, src) {
                    Some(FSym::Map(m)) if !m.round => Some(FSym::Map(MapSym { round: true, ..m })),
                    _ => None,
                };
                defs.insert(dst, sym.map(Sym::F));
            }
            Instr::StoreF64 { buf, idx, val, reduce } => {
                cost.stores += 1;
                let idx = read_int(&defs, &writes, idx)?;
                let val = read_float(&defs, val)?;
                effects.push(Effect::StoreF { buf, idx, val, reduce });
            }
            Instr::StoreU8 { buf, idx, val, reduce } => {
                cost.stores += 1;
                let idx = read_int(&defs, &writes, idx)?;
                let val = read_float(&defs, val)?;
                effects.push(Effect::StoreU { buf, idx, val, reduce });
            }
            Instr::IAppend { buf, val } => {
                cost.stores += 1;
                let val = read_int(&defs, &writes, val)?;
                effects.push(Effect::AppendI { buf, val });
            }
            Instr::FAppend { buf, val } => {
                cost.stores += 1;
                let val = read_float(&defs, val)?;
                effects.push(Effect::AppendF { buf, val });
            }
            Instr::FCmpBranchImm { op, lhs, imm, target } => {
                // At most one guard, jumping straight to the back-edge
                // (an `if cond { ... }` as the whole rest of the body),
                // over a raw un-scaled load, before any effect.
                if guard.is_some()
                    || target != fstep_pc
                    || !is_cmp_op(op)
                    || !base_effects.is_empty()
                {
                    return None;
                }
                match read_float(&defs, lhs) {
                    Some(FSym::Map(m))
                        if m.rhs == VRhs::None && !m.round && m.a.pre == VScale::None =>
                    {
                        guard = Some((op, m.a, imm));
                    }
                    _ => return None,
                }
            }
            // Everything else was rejected by the whitelist pre-scan.
            _ => return None,
        }
    }

    dispatch(guard, &base_effects, &pass_effects, base_cost, pass_cost, counter, hi, vbase_of)
}

/// Pick the kernel op encoding the matched body, or `None` when no op
/// covers its effect shape exactly.  Each arm also checks that the
/// body's counted loads equal the loads the op performs — a load the op
/// would skip could hide an out-of-bounds fault the scalar loop raises.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    guard: Option<(BinOp, LoadSym, f64)>,
    base_effects: &[Effect],
    pass_effects: &[Effect],
    base_cost: CostAcc,
    pass_cost: CostAcc,
    counter: Reg,
    hi: Reg,
    vbase_of: impl Fn(ISym) -> Option<VBase>,
) -> Option<Instr> {
    let rhs_loads = |rhs: VRhs| match rhs {
        VRhs::Buf { .. } => 1,
        VRhs::None | VRhs::Imm { .. } => 0,
    };
    match guard {
        None => {
            if !pass_effects.is_empty() {
                return None;
            }
            let cost = base_cost.to_vcost()?;
            match *base_effects {
                // One store of a literal: the dense-output fill loop.
                [Effect::StoreF { buf, idx, val: FSym::Const(imm), reduce: Option::None }] => {
                    if base_cost.loads != 0 {
                        return None;
                    }
                    let base = vbase_of(idx)?;
                    Some(Instr::VFillStoreF64 { buf, base, imm, counter, hi, cost, lanes: 8 })
                }
                // One store of a map value: elementwise kernels when the
                // index walks with the loop, reductions when it is fixed.
                [Effect::StoreF { buf, idx, val: FSym::Map(m), reduce }] => {
                    if let Some(dst_base) = vbase_of(idx) {
                        if !is_arith_reduce(reduce) || base_cost.loads != 1 + rhs_loads(m.rhs) {
                            return None;
                        }
                        return Some(Instr::VMapF64 {
                            dst: buf,
                            dst_base,
                            reduce,
                            round: m.round,
                            a: m.a.buf,
                            a_base: m.a.base,
                            a_pre: m.a.pre,
                            rhs: m.rhs,
                            counter,
                            hi,
                            cost,
                            lanes: 8,
                        });
                    }
                    // A fixed index + an arithmetic reduce: a scalar
                    // accumulator in a one-element (or wider) buffer.
                    let ISym::Const(acc_idx) = idx else { return None };
                    let op = reduce?;
                    if acc_idx < 0 || !is_float_arith(op) || m.round {
                        return None;
                    }
                    match m.rhs {
                        // `acc op= pre(src[..])`.
                        VRhs::None => {
                            if base_cost.loads != 1 {
                                return None;
                            }
                            Some(Instr::VReduceF64 {
                                acc: buf,
                                acc_idx,
                                src: m.a.buf,
                                base: m.a.base,
                                pre: m.a.pre,
                                op,
                                counter,
                                hi,
                                cost,
                                lanes: 4,
                            })
                        }
                        // `acc op= a[..] * b[..]` — the inner product.
                        VRhs::Buf { op: BinOp::Mul, buf: b, base: b_base, pre: VScale::None }
                            if m.a.pre == VScale::None =>
                        {
                            if base_cost.loads != 2 {
                                return None;
                            }
                            Some(Instr::VMulAddF64 {
                                acc: buf,
                                acc_idx,
                                a: m.a.buf,
                                a_base: m.a.base,
                                b,
                                b_base,
                                op,
                                counter,
                                hi,
                                cost,
                                lanes: 4,
                            })
                        }
                        _ => None,
                    }
                }
                // Unconditional coordinate + value appends: the
                // dense-to-sparse copy stream.
                [Effect::AppendI { buf: idx_out, val: ISym::Counter }, Effect::AppendF { buf: val_out, val: FSym::Map(m) }]
                    if m.rhs == VRhs::None && !m.round && m.a.pre == VScale::None =>
                {
                    if base_cost.loads != 1 {
                        return None;
                    }
                    Some(Instr::VAppendRangeF64 {
                        idx_out,
                        val_out,
                        src: m.a.buf,
                        base: m.a.base,
                        guard: Option::None,
                        counter,
                        hi,
                        cost,
                        pass_cost: ZERO_COST,
                        lanes: 4,
                    })
                }
                _ => None,
            }
        }
        Some((gop, gload, gimm)) => {
            // The guarded forms: nothing observable before the guard
            // except its own load.
            if !base_effects.is_empty() || base_cost.loads != 1 {
                return None;
            }
            let cost = base_cost.to_vcost()?;
            let pass = pass_cost.to_vcost()?;
            match *pass_effects {
                // Guarded appends re-loading the guarded value: the
                // threshold sieve into a sparse output.
                [Effect::AppendI { buf: idx_out, val: ISym::Counter }, Effect::AppendF { buf: val_out, val: FSym::Map(m) }]
                    if m.rhs == VRhs::None
                        && !m.round
                        && m.a.pre == VScale::None
                        && m.a == gload =>
                {
                    if pass_cost.loads != 1 {
                        return None;
                    }
                    Some(Instr::VAppendRangeF64 {
                        idx_out,
                        val_out,
                        src: gload.buf,
                        base: gload.base,
                        guard: Some((gop, gimm)),
                        counter,
                        hi,
                        cost,
                        pass_cost: pass,
                        lanes: 4,
                    })
                }
                // A guarded literal store into a U8 image: binarization.
                [Effect::StoreU { buf, idx, val: FSym::Const(set), reduce: Option::None }] => {
                    if pass_cost.loads != 0 {
                        return None;
                    }
                    let dst_base = vbase_of(idx)?;
                    Some(Instr::VCmpSelectU8 {
                        dst: buf,
                        dst_base,
                        src: gload.buf,
                        src_base: gload.base,
                        cmp: gop,
                        cmp_imm: gimm,
                        set,
                        counter,
                        hi,
                        cost,
                        pass_cost: pass,
                        lanes: 4,
                    })
                }
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::expr::{Expr, UnOp};
    use crate::stmt::Stmt;
    use crate::var::Names;
    use crate::vm::Vm;

    fn lower_typed(prog: &[Stmt], names: &Names, bufs: &BufferSet) -> Program {
        let raw = Program::compile(prog, names);
        let fused = crate::opt::peephole(&raw, &mut OptStats::default());
        crate::opt::typing::specialize(&fused, bufs, &mut OptStats::default())
    }

    /// Vectorize the typed program and assert the scalar and vectorized
    /// forms produce bit-identical buffers and identical work counters.
    fn vectorize_checked(prog: &[Stmt], names: &Names, bufs: &BufferSet) -> (Program, OptStats) {
        let typed = lower_typed(prog, names, bufs);
        let mut stats = OptStats::default();
        let vectorized = vectorize(&typed, &mut stats);
        vectorized.validate().expect("vectorized program validates");
        let run = |p: &Program| {
            let mut bufs = bufs.clone();
            let mut vm = Vm::new(p);
            vm.run(p, &mut bufs).expect("program runs");
            (bufs, vm.stats())
        };
        let (scalar_bufs, scalar_stats) = run(&typed);
        let (vec_bufs, vec_stats) = run(&vectorized);
        assert_eq!(scalar_stats, vec_stats, "work counters diverge:\n{}", vectorized.disasm());
        for (id, name, buf) in scalar_bufs.iter() {
            assert_eq!(buf, vec_bufs.get(id), "buffer {name} diverges:\n{}", vectorized.disasm());
        }
        (vectorized, stats)
    }

    fn has(p: &Program, pred: impl Fn(&Instr) -> bool) -> bool {
        p.code().iter().any(pred)
    }

    #[test]
    fn fill_loop_becomes_vfill() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::F64(vec![9.0; 13].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(12),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::Var(i),
                value: Expr::float(0.25),
                reduce: None,
            }],
        }];
        let (p, stats) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(i, Instr::VFillStoreF64 { imm, .. } if *imm == 0.25)),
            "\n{}",
            p.disasm()
        );
        assert!(stats.instrs_vectorized > 0, "{stats:?}");
        assert_eq!(stats.instrs_vectorized, stats.instrs_vectorizable, "{stats:?}");
    }

    #[test]
    fn axpy_becomes_vmap_with_reduce() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64((1..=12).map(f64::from).collect()));
        let y = bufs.add("y", Buffer::F64(vec![0.5; 12].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![Stmt::Store {
                buf: y,
                index: Expr::Var(i),
                value: Expr::mul(Expr::float(0.75), Expr::load(x, Expr::Var(i))),
                reduce: Some(BinOp::Add),
            }],
        }];
        let (p, stats) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(
                i,
                Instr::VMapF64 {
                    reduce: Some(BinOp::Add),
                    round: false,
                    a_pre: VScale::Left { op: BinOp::Mul, .. },
                    rhs: VRhs::None,
                    ..
                }
            )),
            "\n{}",
            p.disasm()
        );
        assert_eq!(stats.instrs_vectorized, stats.instrs_vectorizable, "{stats:?}");
    }

    #[test]
    fn blend_inner_loop_becomes_strided_vmap_with_round() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let n = 10i64;
        let a = bufs.add("a", Buffer::F64((0..100).map(|v| v as f64 * 3.0).collect()));
        let b = bufs.add("b", Buffer::F64((0..100).map(|v| v as f64 * 1.1).collect()));
        let out = bufs.add("out", Buffer::F64(vec![0.0; 100].into()));
        let i = names.fresh("i");
        let j = names.fresh("j");
        let idx = || Expr::add(Expr::mul(Expr::Var(i), Expr::int(n)), Expr::Var(j));
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(n - 1),
            body: vec![Stmt::For {
                var: j,
                lo: Expr::int(0),
                hi: Expr::int(n - 1),
                body: vec![Stmt::Store {
                    buf: out,
                    index: idx(),
                    value: Expr::unary(
                        UnOp::Round,
                        Expr::add(
                            Expr::mul(Expr::float(0.6), Expr::load(a, idx())),
                            Expr::mul(Expr::float(0.4), Expr::load(b, idx())),
                        ),
                    ),
                    reduce: None,
                }],
            }],
        }];
        let (p, stats) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |instr| matches!(
                instr,
                Instr::VMapF64 {
                    round: true,
                    dst_base: VBase::Scaled { stride: 10, .. },
                    a_base: VBase::Scaled { stride: 10, .. },
                    rhs: VRhs::Buf { op: BinOp::Add, base: VBase::Scaled { stride: 10, .. }, .. },
                    ..
                }
            )),
            "\n{}",
            p.disasm()
        );
        // Only the innermost loop is a candidate; all of it vectorized.
        assert!(stats.instrs_vectorized > 0, "{stats:?}");
        assert_eq!(stats.instrs_vectorized, stats.instrs_vectorizable, "{stats:?}");
    }

    #[test]
    fn dot_product_becomes_vmuladd() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64((1..=12).map(f64::from).collect()));
        let y = bufs.add("y", Buffer::F64((1..=12).map(|v| 2.0_f64.powi(v - 4)).collect()));
        let acc = bufs.add("acc", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![Stmt::Store {
                buf: acc,
                index: Expr::int(0),
                value: Expr::mul(Expr::load(x, Expr::Var(i)), Expr::load(y, Expr::Var(i))),
                reduce: Some(BinOp::Add),
            }],
        }];
        let (p, stats) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(
                i,
                Instr::VMulAddF64 { acc_idx: 0, op: BinOp::Add, lanes: 4, .. }
            )),
            "\n{}",
            p.disasm()
        );
        assert_eq!(stats.instrs_vectorized, stats.instrs_vectorizable, "{stats:?}");
    }

    #[test]
    fn max_reduction_becomes_vreduce() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add(
            "x",
            Buffer::F64(
                vec![1.0, 9.0, -3.0, 4.0, 2.0, 7.5, -8.0, 3.25, 6.0, 0.5, 11.0, -2.0].into(),
            ),
        );
        let acc = bufs.add("acc", Buffer::F64(vec![f64::NEG_INFINITY].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![Stmt::Store {
                buf: acc,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Max),
            }],
        }];
        let (p, _) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(i, Instr::VReduceF64 { op: BinOp::Max, .. })),
            "\n{}",
            p.disasm()
        );
    }

    #[test]
    fn copy_stream_becomes_unguarded_vappend() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64((0..12).map(|v| v as f64 + 1.5).collect()));
        let idx_out = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let val_out = bufs.add("val", Buffer::F64(Vec::new().into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![
                Stmt::Append { buf: idx_out, value: Expr::Var(i) },
                Stmt::Append { buf: val_out, value: Expr::load(x, Expr::Var(i)) },
            ],
        }];
        let (p, _) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(i, Instr::VAppendRangeF64 { guard: None, .. })),
            "\n{}",
            p.disasm()
        );
    }

    #[test]
    fn threshold_sieve_becomes_guarded_vappend() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add(
            "x",
            Buffer::F64(
                vec![0.1, 0.9, 0.2, 0.8, 0.7, 0.05, 0.6, 0.15, 0.95, 0.4, 0.33, 0.85].into(),
            ),
        );
        let idx_out = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let val_out = bufs.add("val", Buffer::F64(Vec::new().into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![Stmt::If {
                cond: Expr::binary(BinOp::Gt, Expr::load(x, Expr::Var(i)), Expr::float(0.3)),
                then_branch: vec![
                    Stmt::Append { buf: idx_out, value: Expr::Var(i) },
                    Stmt::Append { buf: val_out, value: Expr::load(x, Expr::Var(i)) },
                ],
                else_branch: vec![],
            }],
        }];
        let (p, _) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(
                i,
                Instr::VAppendRangeF64 { guard: Some((BinOp::Gt, imm)), .. } if *imm == 0.3
            )),
            "\n{}",
            p.disasm()
        );
    }

    #[test]
    fn binarization_becomes_vcmpselect() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add(
            "x",
            Buffer::F64(
                vec![0.1, 0.9, 0.2, 0.8, 0.7, 0.05, 0.55, 0.45, 0.99, 0.3, 0.5, 0.65].into(),
            ),
        );
        let out = bufs.add("out", Buffer::U8(vec![0; 12]));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![Stmt::If {
                cond: Expr::binary(BinOp::Ge, Expr::load(x, Expr::Var(i)), Expr::float(0.5)),
                then_branch: vec![Stmt::Store {
                    buf: out,
                    index: Expr::Var(i),
                    value: Expr::float(255.0),
                    reduce: None,
                }],
                else_branch: vec![],
            }],
        }];
        let (p, _) = vectorize_checked(&prog, &names, &bufs);
        assert!(
            has(&p, |i| matches!(
                i,
                Instr::VCmpSelectU8 { cmp: BinOp::Ge, set, .. } if *set == 255.0
            )),
            "\n{}",
            p.disasm()
        );
    }

    #[test]
    fn unsupported_index_shape_is_left_scalar() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::F64(vec![0.0; 10].into()));
        let i = names.fresh("i");
        // `out[i * i] = 1.0` — a quadratic index no kernel op encodes.
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::mul(Expr::Var(i), Expr::Var(i)),
                value: Expr::float(1.0),
                reduce: None,
            }],
        }];
        let typed = lower_typed(&prog, &names, &bufs);
        let mut stats = OptStats::default();
        let vectorized = vectorize(&typed, &mut stats);
        assert_eq!(typed.code(), vectorized.code(), "\n{}", vectorized.disasm());
        assert_eq!(stats.instrs_vectorized, 0, "{stats:?}");
        assert!(stats.instrs_vectorizable > 0, "{stats:?}");
    }

    #[test]
    fn short_trips_fall_back_to_the_scalar_loop() {
        // Below the VM's minimum bulk trip the op declines at runtime and
        // the untouched scalar loop computes everything — still exact.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let y = bufs.add("y", Buffer::F64(vec![0.5; 4].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::Store {
                buf: y,
                index: Expr::Var(i),
                value: Expr::mul(Expr::float(0.75), Expr::load(x, Expr::Var(i))),
                reduce: Some(BinOp::Add),
            }],
        }];
        let (p, _) = vectorize_checked(&prog, &names, &bufs);
        assert!(has(&p, |i| matches!(i, Instr::VMapF64 { .. })), "\n{}", p.disasm());
    }

    #[test]
    fn step_budget_faults_identically_with_and_without_kernel_ops() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64((1..=12).map(f64::from).collect()));
        let y = bufs.add("y", Buffer::F64(vec![0.0; 12].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(11),
            body: vec![Stmt::Store {
                buf: y,
                index: Expr::Var(i),
                value: Expr::mul(Expr::float(2.0), Expr::load(x, Expr::Var(i))),
                reduce: None,
            }],
        }];
        let typed = lower_typed(&prog, &names, &bufs);
        let vectorized = vectorize(&typed, &mut OptStats::default());
        assert!(has(&vectorized, |i| matches!(i, Instr::VMapF64 { .. })));
        for budget in 0..40u64 {
            let run = |p: &Program| {
                let mut bufs = bufs.clone();
                let mut vm = Vm::new(p).with_step_budget(budget);
                let outcome = vm.run(p, &mut bufs).map_err(|e| format!("{e:?}"));
                (outcome, bufs, vm.stats())
            };
            let (sr, sb, ss) = run(&typed);
            let (vr, vb, vs) = run(&vectorized);
            assert_eq!(sr, vr, "outcome diverges at budget {budget}");
            assert_eq!(ss, vs, "stats diverge at budget {budget}");
            for (id, name, buf) in sb.iter() {
                assert_eq!(buf, vb.get(id), "buffer {name} diverges at budget {budget}");
            }
        }
    }
}
