//! Constant folding, constant/copy propagation, and statically-decidable
//! control-flow pruning.
//!
//! Every rewrite in this pass is *value-exact*: literal subexpressions are
//! folded with the exact runtime operator semantics ([`Value::binop`] /
//! [`Value::unop`]), so the folded literal is bit-identical to what either
//! engine would have computed, including `missing` propagation, integer
//! wrapping, and int→float promotion.  Identities whose result type depends
//! on the *runtime* type of a non-literal operand (e.g. `x + 0`, `x * 1`)
//! are deliberately **not** applied here: `Bool(true) * Int(1)` evaluates
//! to `Float(1.0)`, so collapsing `x * 1` to `x` could change the value a
//! boolean-typed `x` produces downstream.
//!
//! Propagation facts are tracked per straight-line region: assignments kill
//! facts about the assigned variable (and facts that mention it), loop
//! bodies kill everything they assign before the body or the condition is
//! rewritten, and `if` branches are folded under cloned environments whose
//! assignments are killed at the join.

use std::collections::HashMap;

use crate::expr::{BinOp, Expr};
use crate::stmt::Stmt;
use crate::value::Value;
use crate::var::Var;

use super::OptStats;

/// Fold and propagate constants through a program.  When
/// `unroll_point_loops` is set (the `Aggressive` level), `for` loops with
/// identical literal bounds are replaced by a single unrolled iteration.
pub(super) fn fold_stmts(
    stmts: &[Stmt],
    unroll_point_loops: bool,
    stats: &mut OptStats,
) -> Vec<Stmt> {
    let mut env: HashMap<Var, Expr> = HashMap::new();
    fold_seq(stmts, &mut env, unroll_point_loops, stats)
}

/// Remove every fact about `var`: its own binding and any binding whose
/// replacement expression mentions it.
fn kill(env: &mut HashMap<Var, Expr>, var: Var) {
    env.remove(&var);
    env.retain(|_, e| !e.mentions(var));
}

/// Variables assigned anywhere in `stmts` (including loop variables).
fn assigned_vars(stmts: &[Stmt]) -> Vec<Var> {
    let mut out = Vec::new();
    for s in stmts {
        s.visit(&mut |node| match node {
            Stmt::Let { var, .. } | Stmt::Assign { var, .. } | Stmt::For { var, .. } => {
                out.push(*var);
            }
            _ => {}
        });
    }
    out
}

fn kill_assigned(env: &mut HashMap<Var, Expr>, stmts: &[Stmt]) {
    for v in assigned_vars(stmts) {
        kill(env, v);
    }
}

/// Rewrite an expression: substitute propagated facts, then fold literal
/// subexpressions bottom-up.
fn rewrite(e: &Expr, env: &HashMap<Var, Expr>, stats: &mut OptStats) -> Expr {
    e.map(&mut |node| match node {
        Expr::Var(v) => env.get(v).map(|r| {
            stats.copies_propagated += 1;
            r.clone()
        }),
        _ => {
            let folded = fold_node(node);
            if folded.is_some() {
                stats.folds += 1;
            }
            folded
        }
    })
}

/// Fold one (already child-rewritten) expression node, or `None` when it is
/// not statically decidable.
fn fold_node(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Binary { op, lhs, rhs } => {
            let (a, b) = (lhs.as_lit(), rhs.as_lit());
            match op {
                // `&&` / `||` short-circuit in the engines: a non-missing
                // false (resp. true) left operand decides the result without
                // evaluating the right one.  A missing left operand still
                // evaluates the right and yields missing.
                BinOp::And | BinOp::Or => {
                    if let Some(a) = a {
                        if !a.is_missing() {
                            match (op, a.as_bool().ok()?) {
                                (BinOp::And, false) => return Some(Expr::bool(false)),
                                (BinOp::Or, true) => return Some(Expr::bool(true)),
                                _ => {
                                    // The left operand no longer decides:
                                    // fold fully only when both are literal.
                                    let b = b?;
                                    let v = Value::binop(*op, a, b).ok()?;
                                    return Some(Expr::Lit(v));
                                }
                            }
                        }
                        // Missing lhs: missing op b == missing for any b.
                        if b.is_some() {
                            return Some(Expr::missing());
                        }
                    }
                    None
                }
                _ => {
                    let v = Value::binop(*op, a?, b?).ok()?;
                    Some(Expr::Lit(v))
                }
            }
        }
        Expr::Unary { op, arg } => {
            let v = Value::unop(*op, arg.as_lit()?).ok()?;
            Some(Expr::Lit(v))
        }
        Expr::Select { cond, then, otherwise } => {
            let c = cond.as_lit()?;
            // Both engines treat a missing condition as false.
            let taken = if c.is_missing() { false } else { c.as_bool().ok()? };
            Some(if taken { (**then).clone() } else { (**otherwise).clone() })
        }
        Expr::Coalesce(args) => {
            // Drop leading literal-missing arguments; a leading non-missing
            // literal (or a single remaining argument) decides the result.
            let keep: Vec<Expr> =
                args.iter().skip_while(|a| a.is_lit(Value::Missing)).cloned().collect();
            match keep.first() {
                None => Some(Expr::missing()),
                Some(first) => match first.as_lit() {
                    Some(v) if !v.is_missing() => Some(Expr::Lit(v)),
                    _ if keep.len() == 1 => Some(keep.into_iter().next().expect("one arg")),
                    _ if keep.len() < args.len() => Some(Expr::Coalesce(keep)),
                    _ => None,
                },
            }
        }
        _ => None,
    }
}

fn fold_seq(
    stmts: &[Stmt],
    env: &mut HashMap<Var, Expr>,
    unroll: bool,
    stats: &mut OptStats,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        fold_stmt(s, env, unroll, stats, &mut out);
    }
    out
}

fn fold_stmt(
    s: &Stmt,
    env: &mut HashMap<Var, Expr>,
    unroll: bool,
    stats: &mut OptStats,
    out: &mut Vec<Stmt>,
) {
    match s {
        Stmt::Comment(_) => out.push(s.clone()),
        Stmt::Let { var, init } => {
            let init = rewrite(init, env, stats);
            kill(env, *var);
            record_fact(env, *var, &init);
            out.push(Stmt::Let { var: *var, init });
        }
        Stmt::Assign { var, value } => {
            let value = rewrite(value, env, stats);
            kill(env, *var);
            record_fact(env, *var, &value);
            out.push(Stmt::Assign { var: *var, value });
        }
        Stmt::Store { buf, index, value, reduce } => out.push(Stmt::Store {
            buf: *buf,
            index: rewrite(index, env, stats),
            value: rewrite(value, env, stats),
            reduce: *reduce,
        }),
        Stmt::Append { buf, value } => {
            out.push(Stmt::Append { buf: *buf, value: rewrite(value, env, stats) });
        }
        Stmt::FiberEnd { .. } => out.push(s.clone()),
        Stmt::If { cond, then_branch, else_branch } => {
            let cond = rewrite(cond, env, stats);
            if let Some(c) = cond.as_lit() {
                // Both engines treat a missing condition as false; any other
                // literal must coerce to a boolean for the branch to be
                // statically decidable.
                let taken = if c.is_missing() { Some(false) } else { c.as_bool().ok() };
                if let Some(taken) = taken {
                    stats.branches_pruned += 1;
                    let branch = if taken { then_branch } else { else_branch };
                    let folded = fold_seq(branch, env, unroll, stats);
                    out.extend(folded);
                    return;
                }
            }
            let mut then_env = env.clone();
            let then_branch = fold_seq(then_branch, &mut then_env, unroll, stats);
            let mut else_env = env.clone();
            let else_branch = fold_seq(else_branch, &mut else_env, unroll, stats);
            // At the join, only facts that survived both branches are safe;
            // conservatively kill everything either branch assigned.
            kill_assigned(env, &then_branch);
            kill_assigned(env, &else_branch);
            out.push(Stmt::If { cond, then_branch, else_branch });
        }
        Stmt::While { cond, body } => {
            // The condition re-evaluates each iteration: body assignments
            // invalidate facts before the condition is rewritten.
            kill_assigned(env, body);
            let cond = rewrite(cond, env, stats);
            if let Some(c) = cond.as_lit() {
                if c.as_bool() == Ok(false) {
                    stats.loops_removed += 1;
                    return;
                }
            }
            let body = fold_seq(body, env, unroll, stats);
            kill_assigned(env, &body);
            out.push(Stmt::While { cond, body });
        }
        Stmt::For { var, lo, hi, body } => {
            // Bounds are evaluated once, before the first iteration, so the
            // pre-loop facts apply to them.
            let lo = rewrite(lo, env, stats);
            let hi = rewrite(hi, env, stats);
            if let (Some(a), Some(b)) = (lo.as_lit(), hi.as_lit()) {
                if let (Ok(a), Ok(b)) = (a.as_int(), b.as_int()) {
                    if a > b {
                        stats.loops_removed += 1;
                        return;
                    }
                    if a == b && unroll {
                        // A single-iteration loop: bind the loop variable
                        // and splice the body in place of the loop.
                        stats.loops_removed += 1;
                        kill(env, *var);
                        env.insert(*var, Expr::Lit(Value::Int(a)));
                        let mut unrolled = vec![Stmt::Let { var: *var, init: Expr::int(a) }];
                        unrolled.extend(fold_seq(body, env, unroll, stats));
                        kill_assigned(env, &unrolled);
                        if !assigned_vars(body).contains(var) {
                            // The body never reassigns the loop variable, so
                            // its final value is still the single index.
                            env.insert(*var, Expr::Lit(Value::Int(a)));
                        }
                        out.push(Stmt::Block(unrolled));
                        return;
                    }
                }
            }
            kill(env, *var);
            kill_assigned(env, body);
            let body = fold_seq(body, env, unroll, stats);
            kill_assigned(env, &body);
            kill(env, *var);
            out.push(Stmt::For { var: *var, lo, hi, body });
        }
        Stmt::Block(body) => {
            let body = fold_seq(body, env, unroll, stats);
            out.push(Stmt::Block(body));
        }
    }
}

/// After an assignment, remember the variable's value when it is a literal
/// or a plain copy of another variable.
fn record_fact(env: &mut HashMap<Var, Expr>, var: Var, value: &Expr) {
    match value {
        Expr::Lit(_) => {
            env.insert(var, value.clone());
        }
        Expr::Var(w) if *w != var => {
            env.insert(var, value.clone());
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::interp::Interpreter;
    use crate::var::Names;

    fn run(prog: &[Stmt], names: &Names, bufs: &BufferSet) -> (BufferSet, crate::ExecStats) {
        let mut bufs = bufs.clone();
        let mut interp = Interpreter::new(names);
        interp.run(prog, &mut bufs).expect("program runs");
        (bufs, interp.stats())
    }

    #[test]
    fn propagation_respects_reassignment() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let a = names.fresh("a");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(1) },
            Stmt::Assign { var: a, value: Expr::int(2) },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        let mut stats = OptStats::default();
        let folded = fold_stmts(&prog, false, &mut stats);
        let stored_two = Stmt::count_matching(&folded, &|s| {
            matches!(s, Stmt::Store { value: Expr::Lit(Value::Int(2)), .. })
        });
        assert_eq!(stored_two, 1, "the second assignment wins:\n{folded:?}");
    }

    #[test]
    fn loop_body_assignments_kill_facts() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let p = names.fresh("p");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(3)),
                body: vec![Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) }],
            },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(p), reduce: None },
        ];
        let mut stats = OptStats::default();
        let folded = fold_stmts(&prog, false, &mut stats);
        // `p` must NOT be folded into the condition or the trailing store:
        // the loop reassigns it.
        let (orig, _) = run(&prog, &names, &bufs);
        let (opt, _) = run(&folded, &names, &bufs);
        assert_eq!(orig.get(out), opt.get(out));
        assert_eq!(opt.get(out).load(0), Value::Int(3));
    }

    #[test]
    fn branch_facts_are_killed_at_the_join() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::I64(vec![7].into()));
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let a = names.fresh("a");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(1) },
            Stmt::If {
                cond: Expr::eq(Expr::load(x, Expr::int(0)), Expr::int(7)),
                then_branch: vec![Stmt::Assign { var: a, value: Expr::int(2) }],
                else_branch: vec![],
            },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        let mut stats = OptStats::default();
        let folded = fold_stmts(&prog, false, &mut stats);
        let (orig, _) = run(&prog, &names, &bufs);
        let (opt, _) = run(&folded, &names, &bufs);
        assert_eq!(orig.get(out), opt.get(out));
        assert_eq!(opt.get(out).load(0), Value::Int(2));
    }

    #[test]
    fn short_circuit_literals_fold_exactly() {
        // false && x folds to false even when x is not a literal.
        let e = Expr::binary(BinOp::And, Expr::bool(false), Expr::Var(Var(0)));
        assert_eq!(fold_node(&e), Some(Expr::bool(false)));
        // true || x folds to true.
        let e = Expr::binary(BinOp::Or, Expr::bool(true), Expr::Var(Var(0)));
        assert_eq!(fold_node(&e), Some(Expr::bool(true)));
        // true && x does NOT fold (the result is x's truthiness as a bool,
        // not x itself).
        let e = Expr::binary(BinOp::And, Expr::bool(true), Expr::Var(Var(0)));
        assert_eq!(fold_node(&e), None);
        // missing && literal folds to missing.
        let e = Expr::binary(BinOp::And, Expr::missing(), Expr::bool(true));
        assert_eq!(fold_node(&e), Some(Expr::missing()));
    }

    #[test]
    fn coalesce_folds_prune_leading_missing() {
        let e = Expr::Coalesce(vec![Expr::missing(), Expr::int(3), Expr::int(4)]);
        assert_eq!(fold_node(&e), Some(Expr::int(3)));
        let e = Expr::Coalesce(vec![Expr::missing(), Expr::Var(Var(0)), Expr::int(4)]);
        assert_eq!(fold_node(&e), Some(Expr::Coalesce(vec![Expr::Var(Var(0)), Expr::int(4)])));
        let e = Expr::Coalesce(vec![Expr::Var(Var(0))]);
        assert_eq!(fold_node(&e), Some(Expr::Var(Var(0))));
        let e = Expr::Coalesce(vec![Expr::missing(), Expr::missing()]);
        assert_eq!(fold_node(&e), Some(Expr::missing()));
    }

    #[test]
    fn mixed_type_identities_are_not_applied() {
        // x * 1 and x + 0 must survive: their result type depends on x's
        // runtime type.
        let x = Expr::Var(Var(0));
        let e = Expr::mul(x.clone(), Expr::int(1));
        assert_eq!(fold_node(&e), None);
        let e = Expr::add(x, Expr::int(0));
        assert_eq!(fold_node(&e), None);
    }

    #[test]
    fn float_folds_are_bit_exact() {
        let e = Expr::mul(Expr::float(0.1), Expr::float(0.2));
        match fold_node(&e) {
            Some(Expr::Lit(Value::Float(v))) => {
                assert_eq!(v.to_bits(), (0.1f64 * 0.2f64).to_bits());
            }
            other => panic!("expected a float literal, got {other:?}"),
        }
    }
}
