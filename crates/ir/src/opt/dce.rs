//! Dead-code and dead-store elimination.
//!
//! A `let` or variable assignment whose target is never read anywhere in
//! the remaining program is a dead store: the value it computes is
//! unobservable (expressions are pure), so the whole statement is removed.
//! Removal can make further statements dead — a chain `a = b; b` unused —
//! so the pass iterates to a fixpoint.  Control flow that becomes empty is
//! removed too: an `if` with two empty branches, a `for` with an empty
//! body, and empty blocks.  An *empty-bodied* `while` is deliberately kept:
//! removing it would change the termination behaviour of a
//! non-terminating program.
//!
//! Buffer stores ([`Stmt::Store`], [`Stmt::Append`], [`Stmt::FiberEnd`])
//! are never removed — buffers are the program's observable output.
//!
//! Note that a removed statement's expressions can no longer *fault*: a
//! dead `let x = buf[out_of_bounds]` disappears along with the
//! out-of-bounds error it would have raised, so error behaviour is only
//! preserved for programs that complete (see the module docs of
//! [`crate::opt`]).

use std::collections::HashSet;

use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::var::Var;

use super::OptStats;

/// Remove dead variable stores and emptied control flow, iterating to a
/// fixpoint.
pub(super) fn eliminate_dead(stmts: &[Stmt], stats: &mut OptStats) -> Vec<Stmt> {
    let mut cur = stmts.to_vec();
    loop {
        let read = read_vars(&cur);
        let mut removed = 0u64;
        let next = sweep(&cur, &read, &mut removed);
        if removed == 0 {
            return next;
        }
        stats.stmts_removed += removed;
        cur = next;
    }
}

/// Every variable read by any expression of the program.  Binder positions
/// (`let` targets, loop variables) do not count as reads.
fn read_vars(stmts: &[Stmt]) -> HashSet<Var> {
    let mut read = HashSet::new();
    let mut collect = |e: &Expr| {
        e.visit(&mut |node| {
            if let Expr::Var(v) = node {
                read.insert(*v);
            }
        });
    };
    for s in stmts {
        s.visit(&mut |node| match node {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => collect(init),
            Stmt::Store { index, value, .. } => {
                collect(index);
                collect(value);
            }
            Stmt::Append { value, .. } => collect(value),
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => collect(cond),
            Stmt::For { lo, hi, .. } => {
                collect(lo);
                collect(hi);
            }
            Stmt::FiberEnd { .. } | Stmt::Block(_) | Stmt::Comment(_) => {}
        });
    }
    read
}

fn sweep(stmts: &[Stmt], read: &HashSet<Var>, removed: &mut u64) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Let { var, .. } | Stmt::Assign { var, .. } if !read.contains(var) => {
                *removed += 1;
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let then_branch = sweep(then_branch, read, removed);
                let else_branch = sweep(else_branch, read, removed);
                if then_branch.is_empty() && else_branch.is_empty() {
                    *removed += 1;
                } else {
                    out.push(Stmt::If { cond: cond.clone(), then_branch, else_branch });
                }
            }
            Stmt::While { cond, body } => {
                // Keep even when the body empties: dropping a spinning loop
                // would change termination behaviour.
                out.push(Stmt::While { cond: cond.clone(), body: sweep(body, read, removed) });
            }
            Stmt::For { var, lo, hi, body } => {
                let body = sweep(body, read, removed);
                // An emptied loop is only removable when nothing later reads
                // the loop variable (which the loop would have left bound to
                // its last index).
                if body.is_empty() && !read.contains(var) {
                    *removed += 1;
                } else {
                    out.push(Stmt::For { var: *var, lo: lo.clone(), hi: hi.clone(), body });
                }
            }
            Stmt::Block(body) => {
                let body = sweep(body, read, removed);
                if body.is_empty() {
                    *removed += 1;
                } else {
                    out.push(Stmt::Block(body));
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::interp::Interpreter;
    use crate::value::Value;
    use crate::var::Names;

    #[test]
    fn unread_lets_and_their_dependencies_are_removed() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let a = names.fresh("a");
        let b = names.fresh("b");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(1) },
            // b reads a, but b itself is never read: removing b makes a
            // dead too — the fixpoint catches the chain.
            Stmt::Let { var: b, init: Expr::add(Expr::Var(a), Expr::int(1)) },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::int(9), reduce: None },
        ];
        let mut stats = OptStats::default();
        let swept = eliminate_dead(&prog, &mut stats);
        assert_eq!(swept.len(), 1, "only the store survives:\n{swept:?}");
        assert_eq!(stats.stmts_removed, 2);
        let mut interp = Interpreter::new(&names);
        interp.run(&swept, &mut bufs).unwrap();
        assert_eq!(bufs.get(out).load(0), Value::Int(9));
    }

    #[test]
    fn live_assignments_survive() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let a = names.fresh("a");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(4) },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        let mut stats = OptStats::default();
        let swept = eliminate_dead(&prog, &mut stats);
        assert_eq!(swept, prog);
        assert_eq!(stats.stmts_removed, 0);
    }

    #[test]
    fn emptied_control_flow_is_removed_but_while_is_kept() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let i = names.fresh("i");
        let prog = vec![
            Stmt::If {
                cond: Expr::bool(true),
                then_branch: vec![Stmt::Let { var: a, init: Expr::int(1) }],
                else_branch: vec![],
            },
            Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(3),
                body: vec![Stmt::Let { var: a, init: Expr::int(2) }],
            },
            Stmt::While {
                cond: Expr::bool(false),
                body: vec![Stmt::Let { var: a, init: Expr::int(3) }],
            },
        ];
        let mut stats = OptStats::default();
        let swept = eliminate_dead(&prog, &mut stats);
        // The if and for empty out and disappear; the while's body empties
        // but the loop head remains.
        assert_eq!(swept.len(), 1, "{swept:?}");
        assert!(matches!(&swept[0], Stmt::While { body, .. } if body.is_empty()));
    }

    #[test]
    fn buffer_stores_are_never_removed() {
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let idx = bufs.add("idx", Buffer::I64(vec![].into()));
        let prog = vec![
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::int(1), reduce: None },
            Stmt::Append { buf: idx, value: Expr::int(5) },
            Stmt::FiberEnd { pos: out, data: idx },
        ];
        let mut stats = OptStats::default();
        let swept = eliminate_dead(&prog, &mut stats);
        assert_eq!(swept, prog);
    }
}
