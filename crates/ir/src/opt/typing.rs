//! Static register-type inference and monomorphic instruction selection.
//!
//! The register VM keeps a one-byte runtime tag per register and pays a
//! tag dispatch on every operand of every instruction, even though almost
//! every register in generated kernel code holds exactly one type for the
//! whole program: positions and coordinates are `i64`, loaded values are
//! `f64`, buffer element types are fixed at compile time.  This pass
//! recovers that information statically and rewrites proven-monomorphic
//! instructions into the typed forms of [`crate::bytecode::Instr`], which
//! the VM executes directly on the unboxed lanes with **no tag reads or
//! writes**.
//!
//! The pass is a forward abstract interpretation over the compiled
//! [`Program`], seeded from the [`BufferSet`] schema (each buffer's
//! element type) and the constant pool.  The abstract domain is a small
//! powerset lattice over the runtime register states
//!
//! ```text
//!   { Unset, Int, Float, Bool, Missing }
//! ```
//!
//! joined by set union — a singleton `{Int}` is the issue's `Int`, a set
//! containing `Missing` plus a value kind is `MaybeMissing`, and any
//! other non-singleton is `Dyn`.  Branches refine: the fall-through edge
//! of a comparison branch knows its operands were not missing, the
//! missing-test jumps of the `coalesce`/`&&`/`||` lowerings split the
//! `Missing` possibility between their edges (which is what lets the
//! post-`coalesce` registers of the convolution kernels become statically
//! `Float` again).
//!
//! Two facts license each rewrite:
//!
//! 1. **Point typing** — every register the instruction *reads* has a
//!    singleton abstract state at that program point, so reading the lane
//!    without consulting the tag is equivalent.
//! 2. **Global typing** — every register the instruction *writes* is
//!    written with this one type by every instruction in the program and
//!    is never read while possibly unset.  Such registers are recorded in
//!    [`Program::pretags`]; the VM pins their tags before dispatch, so
//!    skipping the tag write is unobservable (generic instructions that
//!    read the register still see the correct tag, and the
//!    unbound-variable check can never have fired for it anyway).
//!
//! Wherever `Missing`/`coalesce`/`permit` semantics (or genuinely mixed
//! types) keep a register dynamic, the instruction simply stays in its
//! generic form — the typed and generic instruction sets interoperate
//! freely within one program.  The rewrite is strictly 1:1 (a statically
//! discharged `CoerceInt` becomes [`Instr::Nop`]), so jump targets,
//! instruction counts and [`crate::interp::ExecStats`] are bit-identical
//! to generic dispatch.

use std::collections::VecDeque;

use crate::buffer::{Buffer, BufferSet};
use crate::bytecode::{is_arith_reduce, is_cmp_op, is_float_arith, is_int_arith};
use crate::bytecode::{Instr, LaneTag, Program, Reg, VBase, VRhs};
use crate::expr::{BinOp, UnOp};
use crate::value::Value;

use super::OptStats;

// The abstract domain: a bitset over possible runtime register states.
const UNSET: u8 = 1 << 0;
const INT: u8 = 1 << 1;
const FLOAT: u8 = 1 << 2;
const BOOL: u8 = 1 << 3;
const MISSING: u8 = 1 << 4;
const VALUE: u8 = INT | FLOAT | BOOL;
const ANY: u8 = UNSET | VALUE | MISSING;

/// One abstract state: a bitset per register.
type State = Vec<u8>;

fn const_bits(v: Value) -> u8 {
    match v {
        Value::Int(_) => INT,
        Value::Float(_) => FLOAT,
        Value::Bool(_) => BOOL,
        Value::Missing => MISSING,
    }
}

fn buf_bits(buf: &Buffer) -> u8 {
    match buf {
        Buffer::I64(_) => INT,
        Buffer::F64(_) => FLOAT,
        // U8 elements load as floats; Bool elements load as bools.
        Buffer::U8(_) => FLOAT,
        Buffer::Bool(_) => BOOL,
    }
}

/// Abstract result of `Value::binop` given operand bitsets.
fn binop_bits(op: BinOp, a: u8, b: u8) -> u8 {
    let missing = ((a | b) & MISSING != 0) as u8 * MISSING;
    if is_cmp_op(op) || matches!(op, BinOp::And | BinOp::Or) {
        return BOOL | missing;
    }
    // Arithmetic: integral only when both operands are integral; any
    // float or bool operand routes through the f64 path.
    let (ak, bk) = (a & VALUE, b & VALUE);
    let mut r = 0u8;
    if ak & INT != 0 && bk & INT != 0 {
        r |= INT;
    }
    if ak & (FLOAT | BOOL) != 0 || bk & (FLOAT | BOOL) != 0 {
        r |= FLOAT;
    }
    if r == 0 {
        // Operands with no known value kind (over-approximate).
        r = INT | FLOAT;
    }
    r | missing
}

/// Abstract result of `Value::unop` given the operand bitset.
fn unop_bits(op: UnOp, a: u8) -> u8 {
    let missing = (a & MISSING != 0) as u8 * MISSING;
    let k = a & VALUE;
    let base = match op {
        UnOp::Not => BOOL,
        UnOp::Sqrt | UnOp::Round => FLOAT,
        UnOp::Neg | UnOp::Abs | UnOp::Sign => {
            let mut r = 0u8;
            if k & INT != 0 {
                r |= INT;
            }
            if k & (FLOAT | BOOL) != 0 {
                r |= FLOAT;
            }
            if r == 0 {
                r = INT | FLOAT;
            }
            r
        }
    };
    base | missing
}

/// The register an instruction writes together with the abstract kind it
/// writes, under the given in-state.  `None` for instructions without a
/// register destination.  This is the single source of truth shared by
/// the dataflow transfer and the global write-kind accumulation.
fn write_effect(instr: Instr, s: &State, consts: &[Value], bufs: &BufferSet) -> Option<(Reg, u8)> {
    let load_bits = |buf, idx: Reg| -> u8 {
        let kind = buf_bits(bufs.get(buf));
        let i = s[idx.index()];
        let mut r = 0u8;
        if i & VALUE != 0 || i & MISSING == 0 {
            r |= kind;
        }
        if i & MISSING != 0 {
            r |= MISSING;
        }
        r
    };
    Some(match instr {
        Instr::Const { dst, cidx } => (dst, const_bits(consts[cidx as usize])),
        Instr::Mov { dst, src } => {
            let b = s[src.index()] & !UNSET;
            (dst, if b == 0 { ANY & !UNSET } else { b })
        }
        Instr::BufLen { dst, .. } => (dst, INT),
        Instr::Load { dst, buf, idx } => (dst, load_bits(buf, idx)),
        Instr::CoerceInt { reg } => (reg, INT),
        Instr::Unary { op, dst, src } => (dst, unop_bits(op, s[src.index()])),
        Instr::Binary { op, dst, lhs, rhs } => {
            (dst, binop_bits(op, s[lhs.index()], s[rhs.index()]))
        }
        Instr::BinaryImm { op, dst, lhs, cidx } => {
            (dst, binop_bits(op, s[lhs.index()], const_bits(consts[cidx as usize])))
        }
        Instr::LoadBinary { op, dst, lhs, buf, idx } => {
            (dst, binop_bits(op, s[lhs.index()], load_bits(buf, idx)))
        }
        Instr::ForTest { var, .. } | Instr::IForTest { var, .. } => (var, INT),
        Instr::ForStep { counter, .. } => (counter, INT),
        Instr::Seek { dst, .. } | Instr::ISeek { dst, .. } => (dst, INT),
        // Typed forms (inputs to a re-run of the pass).
        Instr::ConstI { dst, .. } | Instr::ILen { dst, .. } | Instr::LoadI64 { dst, .. } => {
            (dst, INT)
        }
        Instr::ConstF { dst, .. }
        | Instr::LoadF64 { dst, .. }
        | Instr::LoadU8 { dst, .. }
        | Instr::FMulLoad { dst, .. }
        | Instr::FRound { dst, .. } => (dst, FLOAT),
        Instr::IMov { dst, .. } | Instr::IArith { dst, .. } | Instr::IArithImm { dst, .. } => {
            (dst, INT)
        }
        Instr::FMov { dst, .. } | Instr::FArith { dst, .. } | Instr::FArithImm { dst, .. } => {
            (dst, FLOAT)
        }
        _ => return None,
    })
}

/// Every register an instruction reads, in no particular order.
fn for_each_read(instr: Instr, f: &mut dyn FnMut(Reg)) {
    match instr {
        Instr::Mov { src, .. } | Instr::Unary { src, .. } => f(src),
        Instr::Load { idx, .. } => f(idx),
        Instr::CoerceInt { reg } => f(reg),
        Instr::Store { idx, val, .. }
        | Instr::StoreF64 { idx, val, .. }
        | Instr::StoreU8 { idx, val, .. } => {
            f(idx);
            f(val);
        }
        Instr::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Instr::JumpIfFalse { src, .. }
        | Instr::JumpIfTrue { src, .. }
        | Instr::JumpIfMissing { src, .. }
        | Instr::JumpIfNotMissing { src, .. } => f(src),
        Instr::WhileTest { cond, .. } => f(cond),
        Instr::ForTest { counter, hi, .. } | Instr::IForTest { counter, hi, .. } => {
            f(counter);
            f(hi);
        }
        Instr::ForStep { counter, .. } => f(counter),
        Instr::Append { val, .. } | Instr::IAppend { val, .. } | Instr::FAppend { val, .. } => {
            f(val)
        }
        Instr::Seek { lo, hi, key, .. } | Instr::ISeek { lo, hi, key, .. } => {
            f(lo);
            f(hi);
            f(key);
        }
        Instr::BinaryImm { lhs, .. } => f(lhs),
        Instr::LoadBinary { lhs, idx, .. } => {
            f(lhs);
            f(idx);
        }
        Instr::CmpBranch { lhs, rhs, .. }
        | Instr::WhileCmp { lhs, rhs, .. }
        | Instr::ICmpBranch { lhs, rhs, .. }
        | Instr::FCmpBranch { lhs, rhs, .. }
        | Instr::IWhileCmp { lhs, rhs, .. }
        | Instr::FWhileCmp { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Instr::CmpBranchImm { lhs, .. }
        | Instr::WhileCmpImm { lhs, .. }
        | Instr::ICmpBranchImm { lhs, .. }
        | Instr::FCmpBranchImm { lhs, .. }
        | Instr::IWhileCmpImm { lhs, .. } => f(lhs),
        Instr::IMov { src, .. } | Instr::FMov { src, .. } | Instr::FRound { src, .. } => f(src),
        Instr::LoadI64 { idx, .. } | Instr::LoadF64 { idx, .. } | Instr::LoadU8 { idx, .. } => {
            f(idx)
        }
        Instr::FMulLoad { lhs, idx, .. } => {
            f(lhs);
            f(idx);
        }
        Instr::IArith { lhs, rhs, .. } | Instr::FArith { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Instr::IArithImm { lhs, .. } | Instr::FArithImm { lhs, .. } => f(lhs),
        Instr::BumpStmt
        | Instr::Const { .. }
        | Instr::BufLen { .. }
        | Instr::Jump { .. }
        | Instr::FiberEnd { .. }
        | Instr::Nop
        | Instr::ConstI { .. }
        | Instr::ConstF { .. }
        | Instr::ILen { .. } => {}
        // Vectorized kernel ops (inserted after this pass runs): the
        // loop counter and bound registers, plus any row-base register.
        Instr::VFillStoreF64 { base, counter, hi, .. }
        | Instr::VReduceF64 { base, counter, hi, .. }
        | Instr::VAppendRangeF64 { base, counter, hi, .. } => {
            vbase_read(base, f);
            f(counter);
            f(hi);
        }
        Instr::VMapF64 { dst_base, a_base, rhs, counter, hi, .. } => {
            vbase_read(dst_base, f);
            vbase_read(a_base, f);
            if let VRhs::Buf { base, .. } = rhs {
                vbase_read(base, f);
            }
            f(counter);
            f(hi);
        }
        Instr::VMulAddF64 { a_base, b_base, counter, hi, .. } => {
            vbase_read(a_base, f);
            vbase_read(b_base, f);
            f(counter);
            f(hi);
        }
        Instr::VCmpSelectU8 { dst_base, src_base, counter, hi, .. } => {
            vbase_read(dst_base, f);
            vbase_read(src_base, f);
            f(counter);
            f(hi);
        }
    }
}

/// Visit the register a [`VBase::Scaled`] index shape reads, if any.
fn vbase_read(base: VBase, f: &mut dyn FnMut(Reg)) {
    if let VBase::Scaled { reg, .. } = base {
        f(reg);
    }
}

/// Compute the successor states of one instruction: `(succ_pc, state)`
/// pairs, with per-edge refinement for the branch forms.  Edges whose
/// refinement empties a register's state are provably never taken and
/// are dropped.
fn transfer(
    pc: usize,
    instr: Instr,
    s: &State,
    consts: &[Value],
    bufs: &BufferSet,
    out: &mut Vec<(usize, State)>,
) {
    let next = pc + 1;
    // A branch edge: apply `mask` to `reg`, drop the edge if impossible.
    let mut edge = |succ: usize, refine: &[(Reg, u8)]| {
        let mut t = s.clone();
        for &(r, mask) in refine {
            t[r.index()] &= mask;
            if t[r.index()] == 0 {
                return; // this edge is provably never taken
            }
        }
        out.push((succ, t));
    };
    match instr {
        Instr::Jump { target } => edge(target as usize, &[]),
        Instr::JumpIfFalse { src, target, strict } => {
            // Fall-through: the condition was truthy (not missing, not
            // unset).  Target: falsy — missing only allowed when lenient.
            edge(next, &[(src, !(UNSET | MISSING))]);
            let target_mask = if strict { !(UNSET | MISSING) } else { !UNSET };
            edge(target as usize, &[(src, target_mask)]);
        }
        Instr::JumpIfTrue { src, target } => {
            edge(target as usize, &[(src, !(UNSET | MISSING))]);
            edge(next, &[(src, !UNSET)]);
        }
        Instr::JumpIfMissing { src, target } => {
            // Reads the tag directly: unset falls through, only a true
            // missing jumps.
            edge(target as usize, &[(src, MISSING)]);
            edge(next, &[(src, !MISSING)]);
        }
        Instr::JumpIfNotMissing { src, target } => {
            edge(target as usize, &[(src, !MISSING)]);
            edge(next, &[(src, MISSING)]);
        }
        Instr::WhileTest { cond, end } => {
            // A missing condition is a type error on either path.
            edge(next, &[(cond, !(UNSET | MISSING))]);
            edge(end as usize, &[(cond, !(UNSET | MISSING))]);
        }
        Instr::CmpBranch { lhs, rhs, target, .. }
        | Instr::ICmpBranch { lhs, rhs, target, .. }
        | Instr::FCmpBranch { lhs, rhs, target, .. } => {
            let strict = match instr {
                Instr::CmpBranch { strict, .. } => strict,
                _ => true, // typed operands cannot be missing anyway
            };
            edge(next, &[(lhs, !(UNSET | MISSING)), (rhs, !(UNSET | MISSING))]);
            let m = if strict { !(UNSET | MISSING) } else { !UNSET };
            edge(target as usize, &[(lhs, m), (rhs, m)]);
        }
        Instr::CmpBranchImm { lhs, target, strict, .. } => {
            edge(next, &[(lhs, !(UNSET | MISSING))]);
            let m = if strict { !(UNSET | MISSING) } else { !UNSET };
            edge(target as usize, &[(lhs, m)]);
        }
        Instr::ICmpBranchImm { lhs, target, .. } | Instr::FCmpBranchImm { lhs, target, .. } => {
            edge(next, &[(lhs, !(UNSET | MISSING))]);
            edge(target as usize, &[(lhs, !(UNSET | MISSING))]);
        }
        Instr::WhileCmp { lhs, rhs, end, .. }
        | Instr::IWhileCmp { lhs, rhs, end, .. }
        | Instr::FWhileCmp { lhs, rhs, end, .. } => {
            edge(next, &[(lhs, !(UNSET | MISSING)), (rhs, !(UNSET | MISSING))]);
            edge(end as usize, &[(lhs, !(UNSET | MISSING)), (rhs, !(UNSET | MISSING))]);
        }
        Instr::WhileCmpImm { lhs, end, .. } | Instr::IWhileCmpImm { lhs, end, .. } => {
            edge(next, &[(lhs, !(UNSET | MISSING))]);
            edge(end as usize, &[(lhs, !(UNSET | MISSING))]);
        }
        Instr::ForTest { var, end, .. } | Instr::IForTest { var, end, .. } => {
            // The loop variable is published only on the fall-through
            // (loop-entered) edge.
            let mut entered = s.clone();
            entered[var.index()] = INT;
            out.push((next, entered));
            out.push((end as usize, s.clone()));
        }
        Instr::ForStep { counter, test } => {
            let mut t = s.clone();
            t[counter.index()] = INT;
            out.push((test as usize, t));
        }
        _ => {
            // Straight-line instructions: apply operand refinements that
            // hold on the (only) success continuation, then the write.
            let mut t = s.clone();
            match instr {
                Instr::Mov { src, .. } | Instr::Unary { src, .. } => {
                    t[src.index()] &= !UNSET;
                }
                Instr::Load { idx, .. } | Instr::LoadBinary { idx, .. } => {
                    t[idx.index()] &= !UNSET;
                }
                Instr::Binary { lhs, rhs, .. } => {
                    t[lhs.index()] &= !UNSET;
                    t[rhs.index()] &= !UNSET;
                }
                Instr::BinaryImm { lhs, .. } => {
                    t[lhs.index()] &= !UNSET;
                }
                Instr::Store { val, .. } | Instr::Append { val, .. } => {
                    // A successful store/append proves the value was a
                    // real (non-missing) value.
                    t[val.index()] &= !(UNSET | MISSING);
                }
                _ => {}
            }
            if let Some((dst, bits)) = write_effect(instr, s, consts, bufs) {
                t[dst.index()] = bits;
            }
            out.push((next, t));
        }
    }
}

fn join(a: &mut State, b: &State) -> bool {
    let mut changed = false;
    for (x, &y) in a.iter_mut().zip(b) {
        let j = *x | y;
        if j != *x {
            *x = j;
            changed = true;
        }
    }
    changed
}

/// Run the forward dataflow to a fixpoint, returning the abstract state
/// *before* each instruction (`None` for unreachable instructions).
fn infer(program: &Program, bufs: &BufferSet) -> Vec<Option<State>> {
    let code = program.code();
    let consts = program.consts();
    let n = code.len();
    let mut states: Vec<Option<State>> = vec![None; n];
    if n == 0 {
        return states;
    }
    states[0] = Some(vec![UNSET; program.num_regs()]);
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    let mut succs = Vec::with_capacity(2);
    while let Some(pc) = worklist.pop_front() {
        let s = states[pc].clone().expect("worklist entries are reached");
        succs.clear();
        transfer(pc, code[pc], &s, consts, bufs, &mut succs);
        for (succ, out) in succs.drain(..) {
            if succ >= n {
                continue;
            }
            match &mut states[succ] {
                None => {
                    states[succ] = Some(out);
                    worklist.push_back(succ);
                }
                Some(cur) => {
                    if join(cur, &out) {
                        worklist.push_back(succ);
                    }
                }
            }
        }
    }
    states
}

/// How an instruction operand uses its register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// The operand is read.
    Read,
    /// The operand is (unconditionally, on the relevant edge) written.
    Write,
    /// One field that is both read and written in place
    /// ([`Instr::CoerceInt`]'s register, [`Instr::ForStep`]'s counter).
    ReadWrite,
}

/// Visit every register operand mutably together with its [`Role`].
/// Shared by the temp-splitting prepass, which must rename reads and
/// writes of a register independently.
fn for_each_reg_role(instr: &mut Instr, f: &mut dyn FnMut(&mut Reg, Role)) {
    use Role::*;
    match instr {
        Instr::BumpStmt | Instr::Jump { .. } | Instr::FiberEnd { .. } | Instr::Nop => {}
        Instr::Const { dst, .. }
        | Instr::ConstI { dst, .. }
        | Instr::ConstF { dst, .. }
        | Instr::BufLen { dst, .. }
        | Instr::ILen { dst, .. } => f(dst, Write),
        Instr::Mov { dst, src }
        | Instr::IMov { dst, src }
        | Instr::FMov { dst, src }
        | Instr::Unary { dst, src, .. }
        | Instr::FRound { dst, src } => {
            f(src, Read);
            f(dst, Write);
        }
        Instr::Load { dst, idx, .. }
        | Instr::LoadI64 { dst, idx, .. }
        | Instr::LoadF64 { dst, idx, .. }
        | Instr::LoadU8 { dst, idx, .. } => {
            f(idx, Read);
            f(dst, Write);
        }
        Instr::CoerceInt { reg } => f(reg, ReadWrite),
        Instr::Store { idx, val, .. }
        | Instr::StoreF64 { idx, val, .. }
        | Instr::StoreU8 { idx, val, .. } => {
            f(idx, Read);
            f(val, Read);
        }
        Instr::Binary { dst, lhs, rhs, .. }
        | Instr::IArith { dst, lhs, rhs, .. }
        | Instr::FArith { dst, lhs, rhs, .. } => {
            f(lhs, Read);
            f(rhs, Read);
            f(dst, Write);
        }
        Instr::BinaryImm { dst, lhs, .. }
        | Instr::IArithImm { dst, lhs, .. }
        | Instr::FArithImm { dst, lhs, .. } => {
            f(lhs, Read);
            f(dst, Write);
        }
        Instr::LoadBinary { dst, lhs, idx, .. } | Instr::FMulLoad { dst, lhs, idx, .. } => {
            f(lhs, Read);
            f(idx, Read);
            f(dst, Write);
        }
        Instr::JumpIfFalse { src, .. }
        | Instr::JumpIfTrue { src, .. }
        | Instr::JumpIfMissing { src, .. }
        | Instr::JumpIfNotMissing { src, .. } => f(src, Read),
        Instr::WhileTest { cond, .. } => f(cond, Read),
        Instr::ForTest { counter, hi, var, .. } | Instr::IForTest { counter, hi, var, .. } => {
            f(counter, Read);
            f(hi, Read);
            f(var, Write);
        }
        Instr::ForStep { counter, .. } => f(counter, ReadWrite),
        Instr::Append { val, .. } | Instr::IAppend { val, .. } | Instr::FAppend { val, .. } => {
            f(val, Read)
        }
        Instr::Seek { dst, lo, hi, key, .. } | Instr::ISeek { dst, lo, hi, key, .. } => {
            f(lo, Read);
            f(hi, Read);
            f(key, Read);
            f(dst, Write);
        }
        Instr::CmpBranch { lhs, rhs, .. }
        | Instr::ICmpBranch { lhs, rhs, .. }
        | Instr::FCmpBranch { lhs, rhs, .. }
        | Instr::WhileCmp { lhs, rhs, .. }
        | Instr::IWhileCmp { lhs, rhs, .. }
        | Instr::FWhileCmp { lhs, rhs, .. } => {
            f(lhs, Read);
            f(rhs, Read);
        }
        Instr::CmpBranchImm { lhs, .. }
        | Instr::ICmpBranchImm { lhs, .. }
        | Instr::FCmpBranchImm { lhs, .. }
        | Instr::WhileCmpImm { lhs, .. }
        | Instr::IWhileCmpImm { lhs, .. } => f(lhs, Read),
        // Vectorized kernel ops (inserted after this pass runs): read
        // the bound and any row bases, read-write the loop counter.
        Instr::VFillStoreF64 { base, counter, hi, .. }
        | Instr::VReduceF64 { base, counter, hi, .. }
        | Instr::VAppendRangeF64 { base, counter, hi, .. } => {
            vbase_role(base, f);
            f(hi, Read);
            f(counter, ReadWrite);
        }
        Instr::VMapF64 { dst_base, a_base, rhs, counter, hi, .. } => {
            vbase_role(dst_base, f);
            vbase_role(a_base, f);
            if let VRhs::Buf { base, .. } = rhs {
                vbase_role(base, f);
            }
            f(hi, Read);
            f(counter, ReadWrite);
        }
        Instr::VMulAddF64 { a_base, b_base, counter, hi, .. } => {
            vbase_role(a_base, f);
            vbase_role(b_base, f);
            f(hi, Read);
            f(counter, ReadWrite);
        }
        Instr::VCmpSelectU8 { dst_base, src_base, counter, hi, .. } => {
            vbase_role(dst_base, f);
            vbase_role(src_base, f);
            f(hi, Read);
            f(counter, ReadWrite);
        }
    }
}

/// Visit the register of a [`VBase::Scaled`] index shape as a read.
fn vbase_role(base: &mut VBase, f: &mut dyn FnMut(&mut Reg, Role)) {
    if let VBase::Scaled { reg, .. } = base {
        f(reg, Role::Read);
    }
}

/// The in-place write kind of a [`Role::ReadWrite`] field (`CoerceInt`
/// coerces to Int, `ForStep` increments an Int counter).
const READWRITE_KIND: u8 = INT;

/// Split expression-temp registers whose LIFO slot is reused with
/// conflicting types (an `i64` index in one statement, an `f64` value in
/// the next) into one register per type, so each half can be statically
/// typed.  A temp is split only when *every* reachable access resolves to
/// a single value kind — each read's reaching writes then all wrote that
/// kind, so renaming reads and writes by kind preserves dataflow exactly.
/// Returns `None` when nothing qualifies.
fn split_conflicting_temps(
    program: &Program,
    bufs: &BufferSet,
    states: &[Option<State>],
) -> Option<Program> {
    let num_vars = program.num_vars();
    let n_regs = program.num_regs();
    let singleton = |b: u8| matches!(b, INT | FLOAT | BOOL);
    // Per-register: the set of access kinds seen, and disqualification.
    let mut kinds: Vec<u8> = vec![0; n_regs];
    let mut ok: Vec<bool> = vec![true; n_regs];
    for (pc, instr) in program.code().iter().enumerate() {
        let Some(s) = &states[pc] else { continue };
        let we = write_effect(*instr, s, program.consts(), bufs);
        let mut probe = *instr;
        for_each_reg_role(&mut probe, &mut |r, role| {
            let i = r.index();
            if i < num_vars {
                return;
            }
            let kind = match role {
                Role::Read => s[i],
                Role::Write => match we {
                    Some((d, b)) if d.index() == i => b,
                    _ => 0,
                },
                Role::ReadWrite => {
                    if s[i] != READWRITE_KIND {
                        ok[i] = false;
                    }
                    READWRITE_KIND
                }
            };
            if singleton(kind) {
                kinds[i] |= kind;
            } else {
                ok[i] = false;
            }
        });
    }
    // A register qualifies when every access was a singleton and at least
    // two distinct kinds collide in the slot.
    let mut remap: Vec<Option<[Option<Reg>; 3]>> = vec![None; n_regs];
    let mut next = n_regs as u32;
    let slot = |kind: u8| match kind {
        INT => 0,
        FLOAT => 1,
        _ => 2,
    };
    let mut any = false;
    for i in num_vars..n_regs {
        if !ok[i] || kinds[i].count_ones() < 2 {
            continue;
        }
        let mut m: [Option<Reg>; 3] = [None; 3];
        let mut first = true;
        for kind in [INT, FLOAT, BOOL] {
            if kinds[i] & kind != 0 {
                if first {
                    // The first kind keeps the original slot.
                    m[slot(kind)] = Some(Reg(i as u32));
                    first = false;
                } else {
                    m[slot(kind)] = Some(Reg(next));
                    next += 1;
                }
            }
        }
        remap[i] = Some(m);
        any = true;
    }
    if !any {
        return None;
    }
    let mut p = program.clone();
    for (pc, instr) in p.code.iter_mut().enumerate() {
        let Some(s) = &states[pc] else { continue };
        let we = write_effect(*instr, s, program.consts(), bufs);
        for_each_reg_role(instr, &mut |r, role| {
            let i = r.index();
            let Some(m) = remap.get(i).and_then(|m| m.as_ref()) else { return };
            let kind = match role {
                Role::Read => s[i],
                Role::Write => match we {
                    Some((d, b)) if d.index() == i => b,
                    _ => unreachable!("write position without a write effect"),
                },
                Role::ReadWrite => READWRITE_KIND,
            };
            *r = m[slot(kind)].expect("every access kind was mapped");
        });
    }
    p.num_regs = next as usize;
    Some(p)
}

/// Rewrite proven-monomorphic instructions of a compiled (and typically
/// already peephole-fused) program into their typed forms, recording the
/// statically-typed destination registers in [`Program::pretags`].
///
/// Temps whose LIFO slot mixes types are first split per type (see
/// [`split_conflicting_temps`]); the rewrite itself is 1:1 — same
/// instruction count, same jump targets, same
/// [`crate::interp::ExecStats`] — so typed and generic dispatch are
/// differential-testable bit for bit.  `bufs` must be the buffer set the
/// program was compiled against (it seeds the load/store element types).
pub fn specialize(program: &Program, bufs: &BufferSet, stats: &mut OptStats) -> Program {
    let states = infer(program, bufs);
    let (split, states) = match split_conflicting_temps(program, bufs, &states) {
        Some(p) => {
            let st = infer(&p, bufs);
            (p, st)
        }
        None => (program.clone(), states),
    };
    let program = &split;
    let code = program.code();
    let consts = program.consts();

    // Global write kinds and possibly-unset reads, over reachable code.
    let mut written: Vec<u8> = vec![0; program.num_regs()];
    let mut unset_read: Vec<bool> = vec![false; program.num_regs()];
    for (pc, instr) in code.iter().enumerate() {
        let Some(s) = &states[pc] else { continue };
        if let Some((dst, bits)) = write_effect(*instr, s, consts, bufs) {
            written[dst.index()] |= bits;
        }
        for_each_read(*instr, &mut |r| {
            if s[r.index()] & UNSET != 0 {
                unset_read[r.index()] = true;
            }
        });
    }
    // A register is statically typed when every write gives it the same
    // single value kind and no read can observe it unset.
    let global: Vec<Option<LaneTag>> = written
        .iter()
        .zip(&unset_read)
        .map(|(&bits, &unset)| match (bits, unset) {
            (b, false) if b == INT => Some(LaneTag::Int),
            (b, false) if b == FLOAT => Some(LaneTag::Float),
            (b, false) if b == BOOL => Some(LaneTag::Bool),
            _ => None,
        })
        .collect();
    let dst_ok = |r: Reg, t: LaneTag| global[r.index()] == Some(t);

    let mut new_code = Vec::with_capacity(code.len());
    let mut typed_dsts: Vec<(Reg, LaneTag)> = Vec::new();
    let mut typed = 0u64;
    for (pc, &instr) in code.iter().enumerate() {
        let Some(s) = &states[pc] else {
            new_code.push(instr);
            continue;
        };
        let exact = |r: Reg, bit: u8| s[r.index()] == bit;
        let kind = |b| buf_bits(bufs.get(b));
        let mut pin = |r: Reg, t: LaneTag| {
            if !typed_dsts.contains(&(r, t)) {
                typed_dsts.push((r, t));
            }
        };
        let rewritten = match instr {
            Instr::Const { dst, cidx } => match consts[cidx as usize] {
                Value::Int(imm) if dst_ok(dst, LaneTag::Int) => {
                    pin(dst, LaneTag::Int);
                    Some(Instr::ConstI { dst, imm })
                }
                Value::Float(imm) if dst_ok(dst, LaneTag::Float) => {
                    pin(dst, LaneTag::Float);
                    Some(Instr::ConstF { dst, imm })
                }
                _ => None,
            },
            Instr::Mov { dst, src } if exact(src, INT) && dst_ok(dst, LaneTag::Int) => {
                pin(dst, LaneTag::Int);
                Some(Instr::IMov { dst, src })
            }
            Instr::Mov { dst, src } if exact(src, FLOAT) && dst_ok(dst, LaneTag::Float) => {
                pin(dst, LaneTag::Float);
                Some(Instr::FMov { dst, src })
            }
            Instr::BufLen { dst, buf } if dst_ok(dst, LaneTag::Int) => {
                pin(dst, LaneTag::Int);
                Some(Instr::ILen { dst, buf })
            }
            Instr::CoerceInt { reg } if exact(reg, INT) => Some(Instr::Nop),
            Instr::Load { dst, buf, idx } if exact(idx, INT) => match bufs.get(buf) {
                Buffer::I64(_) if dst_ok(dst, LaneTag::Int) => {
                    pin(dst, LaneTag::Int);
                    Some(Instr::LoadI64 { dst, buf, idx })
                }
                Buffer::F64(_) if dst_ok(dst, LaneTag::Float) => {
                    pin(dst, LaneTag::Float);
                    Some(Instr::LoadF64 { dst, buf, idx })
                }
                Buffer::U8(_) if dst_ok(dst, LaneTag::Float) => {
                    pin(dst, LaneTag::Float);
                    Some(Instr::LoadU8 { dst, buf, idx })
                }
                _ => None,
            },
            Instr::Store { buf, idx, val, reduce }
                if exact(idx, INT) && exact(val, FLOAT) && is_arith_reduce(reduce) =>
            {
                match bufs.get(buf) {
                    Buffer::F64(_) => Some(Instr::StoreF64 { buf, idx, val, reduce }),
                    Buffer::U8(_) => Some(Instr::StoreU8 { buf, idx, val, reduce }),
                    _ => None,
                }
            }
            Instr::Append { buf, val } if exact(val, INT) && kind(buf) == INT => {
                Some(Instr::IAppend { buf, val })
            }
            Instr::Append { buf, val } if exact(val, FLOAT) && kind(buf) == FLOAT => {
                Some(Instr::FAppend { buf, val })
            }
            Instr::Unary { op: UnOp::Round, dst, src }
                if exact(src, FLOAT) && dst_ok(dst, LaneTag::Float) =>
            {
                pin(dst, LaneTag::Float);
                Some(Instr::FRound { dst, src })
            }
            Instr::Binary { op, dst, lhs, rhs }
                if exact(lhs, INT)
                    && exact(rhs, INT)
                    && is_int_arith(op)
                    && dst_ok(dst, LaneTag::Int) =>
            {
                pin(dst, LaneTag::Int);
                Some(Instr::IArith { op, dst, lhs, rhs })
            }
            Instr::Binary { op, dst, lhs, rhs }
                if exact(lhs, FLOAT)
                    && exact(rhs, FLOAT)
                    && is_float_arith(op)
                    && dst_ok(dst, LaneTag::Float) =>
            {
                pin(dst, LaneTag::Float);
                Some(Instr::FArith { op, dst, lhs, rhs })
            }
            Instr::BinaryImm { op, dst, lhs, cidx } => match consts[cidx as usize] {
                Value::Int(imm)
                    if exact(lhs, INT) && is_int_arith(op) && dst_ok(dst, LaneTag::Int) =>
                {
                    pin(dst, LaneTag::Int);
                    Some(Instr::IArithImm { op, dst, lhs, imm })
                }
                Value::Float(imm)
                    if exact(lhs, FLOAT) && is_float_arith(op) && dst_ok(dst, LaneTag::Float) =>
                {
                    pin(dst, LaneTag::Float);
                    Some(Instr::FArithImm { op, dst, lhs, imm })
                }
                _ => None,
            },
            Instr::LoadBinary { op: BinOp::Mul, dst, lhs, buf, idx }
                if exact(lhs, FLOAT)
                    && exact(idx, INT)
                    && matches!(bufs.get(buf), Buffer::F64(_))
                    && dst_ok(dst, LaneTag::Float) =>
            {
                pin(dst, LaneTag::Float);
                Some(Instr::FMulLoad { dst, lhs, buf, idx })
            }
            Instr::CmpBranch { op, lhs, rhs, target, .. } if exact(lhs, INT) && exact(rhs, INT) => {
                Some(Instr::ICmpBranch { op, lhs, rhs, target })
            }
            Instr::CmpBranch { op, lhs, rhs, target, .. }
                if exact(lhs, FLOAT) && exact(rhs, FLOAT) =>
            {
                Some(Instr::FCmpBranch { op, lhs, rhs, target })
            }
            Instr::CmpBranchImm { op, lhs, cidx, target, .. } => match consts[cidx as usize] {
                Value::Int(imm) if exact(lhs, INT) => {
                    Some(Instr::ICmpBranchImm { op, lhs, imm, target })
                }
                Value::Float(imm) if exact(lhs, FLOAT) => {
                    Some(Instr::FCmpBranchImm { op, lhs, imm, target })
                }
                _ => None,
            },
            Instr::WhileCmp { op, lhs, rhs, end } if exact(lhs, INT) && exact(rhs, INT) => {
                Some(Instr::IWhileCmp { op, lhs, rhs, end })
            }
            Instr::WhileCmp { op, lhs, rhs, end } if exact(lhs, FLOAT) && exact(rhs, FLOAT) => {
                Some(Instr::FWhileCmp { op, lhs, rhs, end })
            }
            Instr::WhileCmpImm { op, lhs, cidx, end } => match consts[cidx as usize] {
                Value::Int(imm) if exact(lhs, INT) => {
                    Some(Instr::IWhileCmpImm { op, lhs, imm, end })
                }
                _ => None,
            },
            Instr::ForTest { counter, hi, var, end }
                if exact(counter, INT) && exact(hi, INT) && dst_ok(var, LaneTag::Int) =>
            {
                pin(var, LaneTag::Int);
                Some(Instr::IForTest { counter, hi, var, end })
            }
            Instr::Seek { dst, buf, lo, hi, key, on_abs }
                if exact(lo, INT)
                    && exact(hi, INT)
                    && exact(key, INT)
                    && matches!(bufs.get(buf), Buffer::I64(_))
                    && dst_ok(dst, LaneTag::Int) =>
            {
                pin(dst, LaneTag::Int);
                Some(Instr::ISeek { dst, buf, lo, hi, key, on_abs })
            }
            _ => None,
        };
        match rewritten {
            Some(t) => {
                typed += 1;
                new_code.push(t);
            }
            None => new_code.push(instr),
        }
    }

    stats.instrs_typed += typed;
    stats.regs_pretagged += typed_dsts.len() as u64;
    let mut p = program.clone();
    p.code = new_code;
    p.pretags = typed_dsts;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::interp::ExecStats;
    use crate::stmt::Stmt;
    use crate::var::Names;
    use crate::vm::Vm;

    fn specialize_checked(program: &Program, bufs: &BufferSet) -> (Program, OptStats) {
        let mut stats = OptStats::default();
        let typed = specialize(program, bufs, &mut stats);
        typed.validate().expect("typed program validates");
        assert_eq!(typed.code().len(), program.code().len(), "rewrite is 1:1");
        (typed, stats)
    }

    /// Compile, peephole-fuse, specialize, then run generic and typed and
    /// assert bit-identical buffers and work counters.
    fn assert_typed_parity(prog: &[Stmt], names: &Names, bufs: &BufferSet) -> (Program, OptStats) {
        let raw = Program::compile(prog, names);
        let fused = crate::opt::peephole(&raw, &mut OptStats::default());
        let (typed, stats) = specialize_checked(&fused, bufs);

        let run = |p: &Program| -> (BufferSet, ExecStats) {
            let mut bufs = bufs.clone();
            let mut vm = Vm::new(p);
            vm.run(p, &mut bufs).expect("program runs");
            (bufs, vm.stats())
        };
        let (gen_bufs, gen_stats) = run(&fused);
        let (typ_bufs, typ_stats) = run(&typed);
        assert_eq!(gen_stats, typ_stats, "work counters diverge:\n{}", typed.disasm());
        for (id, name, buf) in gen_bufs.iter() {
            assert_eq!(buf, typ_bufs.get(id), "buffer {name} diverges:\n{}", typed.disasm());
        }
        (typed, stats)
    }

    /// The dense reducing loop: every hot instruction must go typed.
    #[test]
    fn dense_reduction_loop_is_fully_typed() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.5, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let (typed, stats) = assert_typed_parity(&prog, &names, &bufs);
        assert!(stats.instrs_typed > 0, "{stats:?}");
        assert!(stats.regs_pretagged > 0, "{stats:?}");
        let has = |pred: &dyn Fn(&Instr) -> bool| typed.code().iter().any(pred);
        assert!(has(&|i| matches!(i, Instr::IForTest { .. })), "\n{}", typed.disasm());
        assert!(has(&|i| matches!(i, Instr::LoadF64 { .. })), "\n{}", typed.disasm());
        assert!(has(&|i| matches!(i, Instr::StoreF64 { .. })), "\n{}", typed.disasm());
        // Everything executed in the loop body is tag-free.
        let dynamic: Vec<String> = typed
            .code()
            .iter()
            .filter(|i| !i.is_tag_free())
            .map(|i| i.opcode().to_string())
            .collect();
        assert!(dynamic.is_empty(), "dynamic leftovers {dynamic:?}:\n{}", typed.disasm());
    }

    /// The merge-loop shape: typed while heads, typed compares, typed
    /// increments.
    #[test]
    fn merge_loop_types_the_while_head_and_increment() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let p = names.fresh("p");
        let n = names.fresh("n");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::Let { var: n, init: Expr::int(4) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::Var(n)),
                body: vec![
                    Stmt::Store {
                        buf: out,
                        index: Expr::int(0),
                        value: Expr::load(x, Expr::Var(p)),
                        reduce: Some(BinOp::Add),
                    },
                    Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) },
                ],
            },
        ];
        let (typed, _) = assert_typed_parity(&prog, &names, &bufs);
        let has = |pred: &dyn Fn(&Instr) -> bool| typed.code().iter().any(pred);
        assert!(has(&|i| matches!(i, Instr::IWhileCmp { .. })), "\n{}", typed.disasm());
        assert!(
            has(&|i| matches!(i, Instr::IArithImm { op: BinOp::Add, .. })),
            "\n{}",
            typed.disasm()
        );
    }

    /// `coalesce(load@permit, 0.0)`-style code: the maybe-missing register
    /// stays generic through the missing test, but the refined
    /// post-coalesce value types again.
    #[test]
    fn coalesce_keeps_the_missing_path_generic() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let v = names.fresh("v");
        let prog = vec![
            Stmt::Let {
                var: v,
                init: Expr::Coalesce(vec![Expr::load(x, Expr::missing()), Expr::float(0.0)]),
            },
            Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::add(Expr::Var(v), Expr::float(1.0)),
                reduce: None,
            },
        ];
        let (typed, _) = assert_typed_parity(&prog, &names, &bufs);
        // The load at a missing index stays generic...
        assert!(typed.code().iter().any(|i| matches!(i, Instr::Load { .. })), "{}", typed.disasm());
        // ...but v is Float on every path out of the coalesce, so the
        // consumer arithmetic is typed.
        assert!(
            typed
                .code()
                .iter()
                .any(|i| matches!(i, Instr::FArith { .. } | Instr::FArithImm { .. })),
            "{}",
            typed.disasm()
        );
    }

    /// A register written with two different types must not be pretagged
    /// or typed.
    #[test]
    fn mixed_type_register_stays_dynamic() {
        let mut names = Names::new();
        let bufs = BufferSet::new();
        let v = names.fresh("v");
        let w = names.fresh("w");
        let prog = vec![
            Stmt::Let { var: v, init: Expr::int(1) },
            Stmt::Let { var: w, init: Expr::add(Expr::Var(v), Expr::int(1)) },
            Stmt::Let { var: v, init: Expr::float(2.5) },
            Stmt::Let { var: w, init: Expr::add(Expr::Var(v), Expr::float(1.0)) },
        ];
        let raw = Program::compile(&prog, &names);
        let (typed, _) = specialize_checked(&raw, &bufs);
        assert!(
            typed.pretags().iter().all(|&(r, _)| r != Reg(0)),
            "v must not be pretagged: {:?}\n{}",
            typed.pretags(),
            typed.disasm()
        );
        assert_typed_parity(&prog, &names, &bufs);
    }

    /// A LIFO temp slot reused with conflicting types (an index here, a
    /// value there) is split into one register per type so both halves
    /// specialize — the register file grows, the instruction count does
    /// not, and semantics stay bit-identical.
    #[test]
    fn conflicting_temp_slots_are_split_and_fully_typed() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0, 0.0].into()));
        let i = names.fresh("i");
        // Two stores per iteration: each statement's temp tower reuses
        // the same LIFO slots, alternating int (store index arithmetic)
        // and float (loaded values) types in one slot.
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![
                Stmt::Store {
                    buf: out,
                    index: Expr::int(0),
                    value: Expr::load(x, Expr::Var(i)),
                    reduce: Some(BinOp::Add),
                },
                Stmt::Store {
                    buf: out,
                    index: Expr::add(Expr::int(0), Expr::int(1)),
                    value: Expr::mul(Expr::load(x, Expr::Var(i)), Expr::float(2.0)),
                    reduce: Some(BinOp::Add),
                },
            ],
        }];
        let (typed, _) = assert_typed_parity(&prog, &names, &bufs);
        let dynamic: Vec<String> = typed
            .code()
            .iter()
            .filter(|i| !i.is_tag_free())
            .map(|i| i.opcode().to_string())
            .collect();
        assert!(dynamic.is_empty(), "dynamic leftovers {dynamic:?}:\n{}", typed.disasm());
    }

    /// A register that could be read before its only write must not be
    /// pretagged — the unbound-variable error must survive typing.
    #[test]
    fn possibly_unbound_reads_block_pretagging() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let flag = bufs.add("flag", Buffer::I64(vec![0].into()));
        let v = names.fresh("v");
        let w = names.fresh("w");
        let prog = vec![
            Stmt::If {
                cond: Expr::eq(Expr::load(flag, Expr::int(0)), Expr::int(1)),
                then_branch: vec![Stmt::Let { var: v, init: Expr::int(7) }],
                else_branch: vec![],
            },
            // v is unset when the branch was not taken.
            Stmt::Let { var: w, init: Expr::Var(v) },
        ];
        let raw = Program::compile(&prog, &names);
        let (typed, _) = specialize_checked(&raw, &bufs);
        assert!(
            typed.pretags().iter().all(|&(r, _)| r != Reg(0)),
            "v may be read unset and must not be pretagged: {:?}",
            typed.pretags()
        );
        // Both programs still fault with the unbound-variable error.
        for p in [&raw, &typed] {
            let mut vm = Vm::new(p);
            let err = vm.run(p, &mut bufs.clone()).unwrap_err();
            assert!(
                matches!(err, crate::error::RuntimeError::UnboundVariable { .. }),
                "expected unbound error, got {err:?}"
            );
        }
    }

    /// Sparse assembly appends type to IAppend/FAppend and the seek of a
    /// gallop kernel types to ISeek.
    #[test]
    fn appends_and_seeks_specialize() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let coords = bufs.add("coords", Buffer::I64(vec![1, 4, 9, 12].into()));
        let idx = bufs.add("C_idx", Buffer::I64(vec![].into()));
        let val = bufs.add("C_val", Buffer::F64(vec![].into()));
        let p = names.fresh("p");
        let prog = vec![
            Stmt::Let {
                var: p,
                init: Expr::Search {
                    buf: coords,
                    lo: Box::new(Expr::int(0)),
                    hi: Box::new(Expr::int(3)),
                    key: Box::new(Expr::int(8)),
                    on_abs: false,
                },
            },
            Stmt::Append { buf: idx, value: Expr::Var(p) },
            Stmt::Append { buf: val, value: Expr::float(1.5) },
        ];
        let (typed, _) = assert_typed_parity(&prog, &names, &bufs);
        let has = |pred: &dyn Fn(&Instr) -> bool| typed.code().iter().any(pred);
        assert!(has(&|i| matches!(i, Instr::ISeek { .. })), "\n{}", typed.disasm());
        assert!(has(&|i| matches!(i, Instr::IAppend { .. })), "\n{}", typed.disasm());
        assert!(has(&|i| matches!(i, Instr::FAppend { .. })), "\n{}", typed.disasm());
    }

    /// Golden disassembly of the typed dense loop: the full artifact the
    /// specializer produces for the canonical reducing for-loop.
    #[test]
    fn golden_disasm_of_a_typed_reducing_for_loop() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0; 3].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let raw = Program::compile(&prog, &names);
        let fused = crate::opt::peephole(&raw, &mut OptStats::default());
        let (typed, _) = specialize_checked(&fused, &bufs);
        let expected = "   0: stmt
   1: t0 = const.i 0
   2: nop
   3: t1 = const.i 2
   4: nop
   5: for i = t0 while <= t1 (i64) else -> 12
   6: stmt
   7: t2 = const.i 0
   8: nop
   9: t3 = b0[i] (f64)
  10: b1[t2] += t3 (f64)
  11: step t0 -> 5
";
        assert_eq!(typed.disasm(), expected, "\ngeneric was:\n{}", fused.disasm());
    }
}
