//! Static verifiers run after every optimisation pass.
//!
//! Two layers, one per program representation:
//!
//! * [`verify_ir`] checks the statement tree: def-before-use over a
//!   dominance-respecting walk (a definition inside an `if` branch or a
//!   loop body does not dominate the code after it), loop/scope
//!   well-formedness (loop binders are immutable inside their own body),
//!   `Append`/`FiberEnd` effect-ordering legality for sparse output
//!   assembly, and — when the buffer set is available — buffer-id range
//!   and schema consistency.
//! * [`verify_bytecode`] extends [`Program::validate`] (jump alignment,
//!   const-pool bounds, register limits) with buffer-aware checks: every
//!   buffer id is in range and every monomorphic typed opcode agrees with
//!   the element type of the buffer it touches, reusing the same
//!   buffer-schema seeding the typing pass inferred from.
//!
//! Both verifiers return a human-readable description of the *first*
//! violated invariant; the pass manager attributes it to the pass that
//! produced the representation.

use std::collections::{HashMap, HashSet};

use crate::buffer::{BufId, Buffer, BufferSet};
use crate::bytecode::{Instr, LaneTag, Program, VRhs};
use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::var::{Names, Var};

/// Verify the statement-tree invariants of a lowered (and possibly
/// optimised) IR program.
///
/// `bufs` is optional: the def-before-use and effect-ordering checks are
/// purely structural, while the buffer-range and schema checks need the
/// buffer set and are skipped without one.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn verify_ir(stmts: &[Stmt], names: &Names, bufs: Option<&BufferSet>) -> Result<(), String> {
    let mut v = IrVerifier { names, bufs, binders: Vec::new(), fibers: HashMap::new() };
    let mut defined = HashSet::new();
    v.check_seq(stmts, &mut defined)?;
    v.check_effect_order(stmts)?;
    Ok(())
}

struct IrVerifier<'a> {
    names: &'a Names,
    bufs: Option<&'a BufferSet>,
    /// `for` binders currently in scope (they may be read, never written).
    binders: Vec<Var>,
    /// `pos -> data` pairing of every `FiberEnd` seen so far.
    fibers: HashMap<BufId, BufId>,
}

impl IrVerifier<'_> {
    fn describe(&self, var: Var) -> String {
        if var.index() < self.names.len() {
            format!("`{}`", self.names.name(var))
        } else {
            format!("variable #{}", var.index())
        }
    }

    fn check_var(&self, var: Var) -> Result<(), String> {
        if var.index() >= self.names.len() {
            return Err(format!(
                "variable #{} is outside the name table of {}",
                var.index(),
                self.names.len()
            ));
        }
        Ok(())
    }

    fn check_buf(&self, buf: BufId, what: &str) -> Result<(), String> {
        if let Some(bufs) = self.bufs {
            if buf.index() >= bufs.len() {
                return Err(format!(
                    "{what} references buffer #{} outside the set of {}",
                    buf.index(),
                    bufs.len()
                ));
            }
        }
        Ok(())
    }

    /// Check that every variable the expression reads is must-defined, and
    /// that every buffer it loads from is in range.
    fn check_expr(&self, expr: &Expr, defined: &HashSet<Var>) -> Result<(), String> {
        let mut used = Vec::new();
        expr.collect_vars(&mut used);
        for var in used {
            self.check_var(var)?;
            if !defined.contains(&var) {
                return Err(format!(
                    "{} is read before any dominating definition",
                    self.describe(var)
                ));
            }
        }
        let mut buf_err = None;
        expr.visit(&mut |e| {
            if buf_err.is_some() {
                return;
            }
            match e {
                Expr::Load { buf, .. } => buf_err = self.check_buf(*buf, "load").err(),
                Expr::BufLen(buf) => buf_err = self.check_buf(*buf, "len").err(),
                Expr::Search { buf, .. } => buf_err = self.check_buf(*buf, "search").err(),
                _ => {}
            }
        });
        match buf_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn check_write_target(&self, var: Var) -> Result<(), String> {
        if self.binders.contains(&var) {
            return Err(format!(
                "loop binder {} is written inside its own loop body",
                self.describe(var)
            ));
        }
        Ok(())
    }

    /// Walk one statement sequence, threading the must-defined set through
    /// it.  Definitions inside `if` branches survive only when both
    /// branches make them; definitions inside loop bodies do not survive
    /// the loop (the body may run zero times).
    fn check_seq(&mut self, stmts: &[Stmt], defined: &mut HashSet<Var>) -> Result<(), String> {
        for stmt in stmts {
            match stmt {
                Stmt::Comment(_) => {}
                Stmt::Let { var, init } => {
                    self.check_var(*var)?;
                    self.check_write_target(*var)?;
                    self.check_expr(init, defined)?;
                    defined.insert(*var);
                }
                Stmt::Assign { var, value } => {
                    self.check_var(*var)?;
                    self.check_write_target(*var)?;
                    self.check_expr(value, defined)?;
                    defined.insert(*var);
                }
                Stmt::Store { buf, index, value, .. } => {
                    self.check_buf(*buf, "store")?;
                    self.check_expr(index, defined)?;
                    self.check_expr(value, defined)?;
                }
                Stmt::Append { buf, value } => {
                    self.check_buf(*buf, "append")?;
                    self.check_expr(value, defined)?;
                }
                Stmt::FiberEnd { pos, data } => {
                    self.check_buf(*pos, "fiber end")?;
                    self.check_buf(*data, "fiber end")?;
                    if let Some(bufs) = self.bufs {
                        if !matches!(bufs.get(*pos), Buffer::I64(_)) {
                            return Err(format!(
                                "fiber end writes pos buffer `{}`, which is not an i64 buffer",
                                bufs.name(*pos)
                            ));
                        }
                    }
                    match self.fibers.get(pos) {
                        Some(prev) if prev != data => {
                            return Err(format!(
                                "pos buffer #{} closes two different data buffers (#{} and #{})",
                                pos.index(),
                                prev.index(),
                                data.index()
                            ));
                        }
                        _ => {
                            self.fibers.insert(*pos, *data);
                        }
                    }
                }
                Stmt::If { cond, then_branch, else_branch } => {
                    self.check_expr(cond, defined)?;
                    let mut then_defs = defined.clone();
                    self.check_seq(then_branch, &mut then_defs)?;
                    let mut else_defs = defined.clone();
                    self.check_seq(else_branch, &mut else_defs)?;
                    // Only definitions made on *both* paths dominate the
                    // code after the `if`.
                    defined.extend(then_defs.intersection(&else_defs).copied());
                }
                Stmt::While { cond, body } => {
                    self.check_expr(cond, defined)?;
                    let mut body_defs = defined.clone();
                    self.check_seq(body, &mut body_defs)?;
                }
                Stmt::For { var, lo, hi, body } => {
                    self.check_var(*var)?;
                    self.check_expr(lo, defined)?;
                    self.check_expr(hi, defined)?;
                    let mut body_defs = defined.clone();
                    body_defs.insert(*var);
                    self.binders.push(*var);
                    let r = self.check_seq(body, &mut body_defs);
                    self.binders.pop();
                    r?;
                }
                Stmt::Block(body) => self.check_seq(body, defined)?,
            }
        }
        Ok(())
    }

    /// Sparse-assembly effect ordering.  Two global invariants plus one
    /// per-sequence one:
    ///
    /// * a `pos` buffer is written only by `FiberEnd` (never `Append` or
    ///   `Store`), and
    /// * within any one statement sequence, once a `FiberEnd` closes a
    ///   data buffer, no later statement of that sequence (however deeply
    ///   nested) may append to it — appends belong *before* the fiber is
    ///   closed.  (A `FiberEnd` nested in a sibling loop body is one fiber
    ///   per iteration and is checked within that body's own sequence.)
    fn check_effect_order(&self, stmts: &[Stmt]) -> Result<(), String> {
        let mut pos_bufs = HashSet::new();
        for s in stmts {
            s.visit(&mut |node| {
                if let Stmt::FiberEnd { pos, .. } = node {
                    pos_bufs.insert(*pos);
                }
            });
        }
        for s in stmts {
            let mut err = None;
            s.visit(&mut |node| {
                if err.is_some() {
                    return;
                }
                match node {
                    Stmt::Append { buf, .. } if pos_bufs.contains(buf) => {
                        err = Some(format!("append targets pos buffer #{}", buf.index()));
                    }
                    Stmt::Store { buf, .. } if pos_bufs.contains(buf) => {
                        err = Some(format!("store targets pos buffer #{}", buf.index()));
                    }
                    _ => {}
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        self.check_append_order(stmts)
    }

    fn check_append_order(&self, stmts: &[Stmt]) -> Result<(), String> {
        let mut closed: HashSet<BufId> = HashSet::new();
        for stmt in stmts {
            // Appends anywhere inside this statement to an already-closed
            // data buffer are out of order.
            let mut err = None;
            stmt.visit(&mut |node| {
                if err.is_some() {
                    return;
                }
                if let Stmt::Append { buf, .. } = node {
                    if closed.contains(buf) {
                        err = Some(format!(
                            "append to data buffer #{} after its fiber was closed",
                            buf.index()
                        ));
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            // Recurse: nested sequences carry their own ordering.
            match stmt {
                Stmt::If { then_branch, else_branch, .. } => {
                    self.check_append_order(then_branch)?;
                    self.check_append_order(else_branch)?;
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Block(body) => {
                    self.check_append_order(body)?;
                }
                Stmt::FiberEnd { data, .. } => {
                    closed.insert(*data);
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Verify a compiled (and possibly fused/typed) bytecode program against
/// its buffer set: the structural invariants of [`Program::validate`] plus
/// buffer-id range checks, typed-opcode/buffer-schema agreement, and
/// pretag consistency.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn verify_bytecode(program: &Program, bufs: &BufferSet) -> Result<(), String> {
    program.validate()?;
    let check_buf = |pc: usize, buf: BufId| -> Result<(), String> {
        if buf.index() >= bufs.len() {
            return Err(format!(
                "instruction at pc {pc} references buffer #{} outside the set of {}",
                buf.index(),
                bufs.len()
            ));
        }
        Ok(())
    };
    let expect = |pc: usize, buf: BufId, want: &str, ok: bool| -> Result<(), String> {
        if !ok {
            return Err(format!(
                "typed opcode at pc {pc} expects buffer `{}` to be {want}",
                bufs.name(buf)
            ));
        }
        Ok(())
    };
    let rhs_buf = |rhs: VRhs| match rhs {
        VRhs::Buf { buf, .. } => Some(buf),
        VRhs::None | VRhs::Imm { .. } => None,
    };
    for (pc, instr) in program.code().iter().enumerate() {
        match *instr {
            Instr::BufLen { buf, .. }
            | Instr::Load { buf, .. }
            | Instr::Store { buf, .. }
            | Instr::Append { buf, .. }
            | Instr::Seek { buf, .. }
            | Instr::LoadBinary { buf, .. }
            | Instr::ILen { buf, .. } => check_buf(pc, buf)?,
            Instr::FiberEnd { pos, data } => {
                check_buf(pc, pos)?;
                check_buf(pc, data)?;
                expect(pc, pos, "i64", matches!(bufs.get(pos), Buffer::I64(_)))?;
            }
            Instr::LoadI64 { buf, .. } | Instr::IAppend { buf, .. } | Instr::ISeek { buf, .. } => {
                check_buf(pc, buf)?;
                expect(pc, buf, "i64", matches!(bufs.get(buf), Buffer::I64(_)))?;
            }
            Instr::LoadF64 { buf, .. }
            | Instr::FMulLoad { buf, .. }
            | Instr::StoreF64 { buf, .. }
            | Instr::FAppend { buf, .. } => {
                check_buf(pc, buf)?;
                expect(pc, buf, "f64", matches!(bufs.get(buf), Buffer::F64(_)))?;
            }
            Instr::LoadU8 { buf, .. } | Instr::StoreU8 { buf, .. } => {
                check_buf(pc, buf)?;
                expect(pc, buf, "u8", matches!(bufs.get(buf), Buffer::U8(_)))?;
            }
            Instr::VFillStoreF64 { buf, .. } => {
                check_buf(pc, buf)?;
                expect(pc, buf, "f64", matches!(bufs.get(buf), Buffer::F64(_)))?;
            }
            Instr::VMapF64 { dst, a, rhs, .. } => {
                for buf in [Some(dst), Some(a), rhs_buf(rhs)].into_iter().flatten() {
                    check_buf(pc, buf)?;
                    expect(pc, buf, "f64", matches!(bufs.get(buf), Buffer::F64(_)))?;
                }
            }
            Instr::VMulAddF64 { acc, a, b, .. } => {
                for buf in [acc, a, b] {
                    check_buf(pc, buf)?;
                    expect(pc, buf, "f64", matches!(bufs.get(buf), Buffer::F64(_)))?;
                }
            }
            Instr::VReduceF64 { acc, src, .. } => {
                for buf in [acc, src] {
                    check_buf(pc, buf)?;
                    expect(pc, buf, "f64", matches!(bufs.get(buf), Buffer::F64(_)))?;
                }
            }
            Instr::VAppendRangeF64 { idx_out, val_out, src, .. } => {
                for buf in [idx_out, val_out, src] {
                    check_buf(pc, buf)?;
                }
                expect(pc, idx_out, "i64", matches!(bufs.get(idx_out), Buffer::I64(_)))?;
                expect(pc, val_out, "f64", matches!(bufs.get(val_out), Buffer::F64(_)))?;
                expect(pc, src, "f64", matches!(bufs.get(src), Buffer::F64(_)))?;
            }
            Instr::VCmpSelectU8 { dst, src, .. } => {
                check_buf(pc, dst)?;
                check_buf(pc, src)?;
                expect(pc, dst, "u8", matches!(bufs.get(dst), Buffer::U8(_)))?;
                expect(pc, src, "f64", matches!(bufs.get(src), Buffer::F64(_)))?;
            }
            _ => {}
        }
    }
    let mut tags: HashMap<crate::bytecode::Reg, LaneTag> = HashMap::new();
    for &(reg, tag) in program.pretags() {
        if let Some(prev) = tags.insert(reg, tag) {
            if prev != tag {
                return Err(format!("register {reg} is pretagged both {prev:?} and {tag:?}"));
            }
        }
    }
    for (r, region) in program.shard_plan().regions.iter().enumerate() {
        for &(buf, role) in &region.roles {
            if buf.index() >= bufs.len() {
                return Err(format!(
                    "shard region #{r} assigns a role to buffer #{} outside the set of {}",
                    buf.index(),
                    bufs.len()
                ));
            }
            if let crate::bytecode::ShardRole::SegmentPos { data } = role {
                if data.index() >= bufs.len() {
                    return Err(format!(
                        "shard region #{r} pos buffer `{}` pairs with data buffer #{} \
                         outside the set of {}",
                        bufs.name(buf),
                        data.index(),
                        bufs.len()
                    ));
                }
            }
            if matches!(role, crate::bytecode::ShardRole::Reduction { .. })
                && !matches!(bufs.get(buf), Buffer::I64(_))
            {
                return Err(format!(
                    "shard region #{r} marks non-i64 buffer `{}` as a reduction",
                    bufs.name(buf)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferSet;
    use crate::expr::Expr;

    fn setup() -> (Names, BufferSet, BufId, BufId) {
        let mut names = Names::new();
        let _ = names.fresh("seed");
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        (names, bufs, x, out)
    }

    #[test]
    fn straight_line_defs_verify() {
        let (mut names, bufs, x, out) = setup();
        let a = names.fresh("a");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::load(x, Expr::int(0)) },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        verify_ir(&prog, &names, Some(&bufs)).expect("well-formed program verifies");
    }

    #[test]
    fn use_before_def_is_flagged() {
        let (mut names, bufs, _x, out) = setup();
        let a = names.fresh("a");
        let prog = vec![
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
            Stmt::Let { var: a, init: Expr::int(1) },
        ];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("before any dominating definition"), "{err}");
    }

    #[test]
    fn loop_body_defs_do_not_dominate_after_the_loop() {
        let (mut names, bufs, x, out) = setup();
        let i = names.fresh("i");
        let a = names.fresh("a");
        let prog = vec![
            Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(2),
                body: vec![Stmt::Let { var: a, init: Expr::load(x, Expr::Var(i)) }],
            },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("`a`"), "{err}");
    }

    #[test]
    fn if_defs_dominate_only_when_on_both_paths() {
        let (mut names, bufs, _x, out) = setup();
        let a = names.fresh("a");
        let both = vec![
            Stmt::If {
                cond: Expr::bool(true),
                then_branch: vec![Stmt::Let { var: a, init: Expr::int(1) }],
                else_branch: vec![Stmt::Let { var: a, init: Expr::int(2) }],
            },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        verify_ir(&both, &names, Some(&bufs)).expect("both-path definition dominates");
        let one = vec![
            Stmt::If {
                cond: Expr::bool(true),
                then_branch: vec![Stmt::Let { var: a, init: Expr::int(1) }],
                else_branch: vec![],
            },
            Stmt::Store { buf: out, index: Expr::int(0), value: Expr::Var(a), reduce: None },
        ];
        assert!(verify_ir(&one, &names, Some(&bufs)).is_err());
    }

    #[test]
    fn loop_binder_writes_are_flagged() {
        let (mut names, bufs, _x, _out) = setup();
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![Stmt::Assign { var: i, value: Expr::int(0) }],
        }];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("loop binder"), "{err}");
    }

    #[test]
    fn buffer_ids_out_of_range_are_flagged() {
        let (names, bufs, _x, _out) = setup();
        let bogus = BufId(99);
        let prog = vec![Stmt::Store {
            buf: bogus,
            index: Expr::int(0),
            value: Expr::int(1),
            reduce: None,
        }];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("outside the set"), "{err}");
        // Without a buffer set the structural checks still pass.
        verify_ir(&prog, &names, None).expect("no buffer set, no buffer check");
    }

    #[test]
    fn append_after_fiber_end_is_flagged() {
        let names = Names::new();
        let mut bufs = BufferSet::new();
        let pos = bufs.add("pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let good =
            vec![Stmt::Append { buf: idx, value: Expr::int(3) }, Stmt::FiberEnd { pos, data: idx }];
        verify_ir(&good, &names, Some(&bufs)).expect("append-then-close verifies");
        let bad =
            vec![Stmt::FiberEnd { pos, data: idx }, Stmt::Append { buf: idx, value: Expr::int(3) }];
        let err = verify_ir(&bad, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("after its fiber was closed"), "{err}");
    }

    #[test]
    fn appends_in_a_sibling_loop_iteration_are_legal() {
        // The canonical lowering: for i { for j { append }; fiberend }.
        // Program-order appends after a *previous iteration's* fiber end
        // must not be flagged.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let pos = bufs.add("pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let (i, j) = (names.fresh("i"), names.fresh("j"));
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![
                Stmt::For {
                    var: j,
                    lo: Expr::int(0),
                    hi: Expr::int(1),
                    body: vec![Stmt::Append { buf: idx, value: Expr::Var(j) }],
                },
                Stmt::FiberEnd { pos, data: idx },
            ],
        }];
        verify_ir(&prog, &names, Some(&bufs)).expect("per-iteration fibers verify");
    }

    #[test]
    fn stores_into_pos_buffers_are_flagged() {
        let names = Names::new();
        let mut bufs = BufferSet::new();
        let pos = bufs.add("pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let prog =
            vec![Stmt::Append { buf: pos, value: Expr::int(0) }, Stmt::FiberEnd { pos, data: idx }];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("pos buffer"), "{err}");
    }

    #[test]
    fn inconsistent_fiber_pairing_is_flagged() {
        let names = Names::new();
        let mut bufs = BufferSet::new();
        let pos = bufs.add("pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let val = bufs.add("val", Buffer::F64(Vec::new().into()));
        let prog = vec![Stmt::FiberEnd { pos, data: idx }, Stmt::FiberEnd { pos, data: val }];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("two different data buffers"), "{err}");
    }

    #[test]
    fn fiber_end_into_non_i64_pos_is_flagged() {
        let names = Names::new();
        let mut bufs = BufferSet::new();
        let posf = bufs.add("posf", Buffer::F64(vec![0.0].into()));
        let idx = bufs.add("idx", Buffer::I64(Vec::new().into()));
        let prog = vec![Stmt::FiberEnd { pos: posf, data: idx }];
        let err = verify_ir(&prog, &names, Some(&bufs)).unwrap_err();
        assert!(err.contains("not an i64 buffer"), "{err}");
    }

    #[test]
    fn typed_opcode_schema_mismatch_is_flagged() {
        use crate::var::Names;
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0].into()));
        let a = names.fresh("a");
        let i = names.fresh("i");
        let prog = vec![
            Stmt::Let { var: i, init: Expr::int(0) },
            Stmt::Let { var: a, init: Expr::load(x, Expr::Var(i)) },
        ];
        let mut program = Program::compile(&prog, &names);
        verify_bytecode(&program, &bufs).expect("generic program verifies");
        // Mistype the load: an I64 load from an F64 buffer.
        for instr in &mut program.code {
            if let Instr::Load { dst, buf, idx } = *instr {
                *instr = Instr::LoadI64 { dst, buf, idx };
            }
        }
        let err = verify_bytecode(&program, &bufs).unwrap_err();
        assert!(err.contains("to be i64"), "{err}");
    }

    #[test]
    fn bytecode_buffer_out_of_range_is_flagged() {
        let names = Names::new();
        let bufs = BufferSet::new();
        let program = Program {
            code: vec![Instr::FiberEnd { pos: BufId(7), data: BufId(8) }],
            consts: Vec::new(),
            var_names: Vec::new(),
            num_regs: 0,
            pretags: Vec::new(),
            shard_plan: crate::bytecode::ShardPlan::default(),
        };
        let _ = names;
        let err = verify_bytecode(&program, &bufs).unwrap_err();
        assert!(err.contains("outside the set"), "{err}");
    }
}
