//! Loop-invariant code motion (LICM): loop-invariant load hoisting.
//!
//! The original Finch implementation emits Julia source, and Julia's
//! compiler hoists loop-invariant buffer loads (such as the value of a run
//! being broadcast over its region) out of inner loops for free.  Our
//! interpreter executes the IR as written, so this pass performs the same
//! hoisting explicitly: a `buf[index]` load inside a loop whose index does
//! not depend on anything assigned in the loop, and whose buffer is never
//! written in the loop, is evaluated once before the loop and reused.
//!
//! Only loads appearing in *unconditionally executed* positions of the loop
//! body (top-level statements and the conditions of top-level `if`/`while`
//! statements) are hoisted, so a load that the generated code guards with a
//! bounds check is never moved ahead of its guard.

use std::collections::HashSet;

use crate::buffer::BufId;
use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::var::{Names, Var};

use super::OptStats;

/// Hoist loop-invariant loads out of every loop in the program.
pub fn hoist_invariant_loads(stmts: &[Stmt], names: &mut Names) -> Vec<Stmt> {
    let mut stats = OptStats::default();
    hoist_with_stats(stmts, names, &mut stats)
}

/// Hoist loop-invariant loads, counting each hoisted load in
/// `stats.loads_hoisted`.
pub(super) fn hoist_with_stats(
    stmts: &[Stmt],
    names: &mut Names,
    stats: &mut OptStats,
) -> Vec<Stmt> {
    stmts.iter().map(|s| hoist_stmt(s, names, stats)).collect()
}

fn hoist_stmt(stmt: &Stmt, names: &mut Names, stats: &mut OptStats) -> Stmt {
    match stmt {
        Stmt::For { var, lo, hi, body } => {
            let body: Vec<Stmt> = body.iter().map(|s| hoist_stmt(s, names, stats)).collect();
            let (pre, body) = hoist_loop_body(&body, Some(*var), names, stats);
            let rebuilt = Stmt::For { var: *var, lo: lo.clone(), hi: hi.clone(), body };
            if pre.is_empty() {
                rebuilt
            } else {
                Stmt::Block(pre.into_iter().chain(std::iter::once(rebuilt)).collect())
            }
        }
        Stmt::While { cond, body } => {
            let body: Vec<Stmt> = body.iter().map(|s| hoist_stmt(s, names, stats)).collect();
            let (pre, body) = hoist_loop_body(&body, None, names, stats);
            let rebuilt = Stmt::While { cond: cond.clone(), body };
            if pre.is_empty() {
                rebuilt
            } else {
                Stmt::Block(pre.into_iter().chain(std::iter::once(rebuilt)).collect())
            }
        }
        Stmt::If { cond, then_branch, else_branch } => Stmt::If {
            cond: cond.clone(),
            then_branch: then_branch.iter().map(|s| hoist_stmt(s, names, stats)).collect(),
            else_branch: else_branch.iter().map(|s| hoist_stmt(s, names, stats)).collect(),
        },
        Stmt::Block(body) => {
            Stmt::Block(body.iter().map(|s| hoist_stmt(s, names, stats)).collect())
        }
        other => other.clone(),
    }
}

/// Split a loop body into hoisted `let` statements and the rewritten body.
fn hoist_loop_body(
    body: &[Stmt],
    loop_var: Option<Var>,
    names: &mut Names,
    stats: &mut OptStats,
) -> (Vec<Stmt>, Vec<Stmt>) {
    // Variables assigned anywhere in the body (plus the loop variable) make
    // an expression loop-variant.
    let mut defined: HashSet<Var> = HashSet::new();
    if let Some(v) = loop_var {
        defined.insert(v);
    }
    let mut stored: HashSet<BufId> = HashSet::new();
    for s in body {
        s.visit(&mut |node| match node {
            Stmt::Let { var, .. } | Stmt::Assign { var, .. } | Stmt::For { var, .. } => {
                defined.insert(*var);
            }
            Stmt::Store { buf, .. } | Stmt::Append { buf, .. } => {
                stored.insert(*buf);
            }
            Stmt::FiberEnd { pos, data } => {
                stored.insert(*pos);
                stored.insert(*data);
            }
            _ => {}
        });
    }

    // Every buffer an expression reads: the outer load's own buffer, plus
    // any `Load`/`BufLen`/`Search` nested anywhere inside it (e.g. in the
    // index).  A candidate is only invariant when *none* of those buffers
    // is written by the loop — an index like `x[len(out)]` must not move
    // above appends to `out`.
    fn collect_read_bufs(e: &Expr, out: &mut Vec<BufId>) {
        e.visit(&mut |node| match node {
            Expr::Load { buf, .. } | Expr::Search { buf, .. } => out.push(*buf),
            Expr::BufLen(buf) => out.push(*buf),
            _ => {}
        });
    }

    // Collect candidate loads from unconditionally executed expressions.
    // The traversal stops at `select` branches and at all but the first
    // `coalesce` argument: those positions are only conditionally
    // evaluated, and a guarded load must never move ahead of its guard.
    fn collect_unconditional(
        e: &Expr,
        defined: &HashSet<Var>,
        stored: &HashSet<BufId>,
        out: &mut Vec<Expr>,
    ) {
        if let Expr::Load { index, .. } = e {
            let mut vars = Vec::new();
            index.collect_vars(&mut vars);
            let mut bufs = Vec::new();
            collect_read_bufs(e, &mut bufs);
            let invariant = bufs.iter().all(|b| !stored.contains(b))
                && vars.iter().all(|v| !defined.contains(v));
            if invariant && !out.contains(e) {
                out.push(e.clone());
            }
        }
        match e {
            Expr::Select { cond, .. } => collect_unconditional(cond, defined, stored, out),
            Expr::Coalesce(args) => {
                if let Some(first) = args.first() {
                    collect_unconditional(first, defined, stored, out);
                }
            }
            Expr::Load { index, .. } => collect_unconditional(index, defined, stored, out),
            Expr::Unary { arg, .. } => collect_unconditional(arg, defined, stored, out),
            Expr::Binary { op, lhs, rhs } => {
                collect_unconditional(lhs, defined, stored, out);
                // `&&` / `||` short-circuit: their right operand is only
                // conditionally evaluated.
                if !matches!(op, crate::expr::BinOp::And | crate::expr::BinOp::Or) {
                    collect_unconditional(rhs, defined, stored, out);
                }
            }
            Expr::Search { lo, hi, key, .. } => {
                collect_unconditional(lo, defined, stored, out);
                collect_unconditional(hi, defined, stored, out);
                collect_unconditional(key, defined, stored, out);
            }
            Expr::Lit(_) | Expr::Var(_) | Expr::BufLen(_) => {}
        }
    }
    let mut candidates: Vec<Expr> = Vec::new();
    let mut consider = |e: &Expr| collect_unconditional(e, &defined, &stored, &mut candidates);
    for s in body {
        match s {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => consider(init),
            Stmt::Store { index, value, .. } => {
                consider(index);
                consider(value);
            }
            Stmt::Append { value, .. } => consider(value),
            Stmt::FiberEnd { .. } => {}
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => consider(cond),
            Stmt::For { lo, hi, .. } => {
                consider(lo);
                consider(hi);
            }
            Stmt::Block(_) | Stmt::Comment(_) => {}
        }
    }

    if candidates.is_empty() {
        return (Vec::new(), body.to_vec());
    }

    let mut pre = Vec::new();
    let mut rewritten = body.to_vec();
    for load in candidates {
        stats.loads_hoisted += 1;
        let var = names.fresh("hoisted");
        pre.push(Stmt::Let { var, init: load.clone() });
        rewritten = rewritten
            .iter()
            .map(|s| {
                s.map_exprs(&mut |e| {
                    e.map(&mut |node| if node == &load { Some(Expr::Var(var)) } else { None })
                })
            })
            .collect();
    }
    (pre, rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::expr::BinOp;
    use crate::interp::Interpreter;
    use crate::value::Value;

    /// Build `for i { out[i] = vals[p] * x[i] }` where `vals[p]` is
    /// invariant, and check that hoisting reduces the number of loads
    /// without changing the result.
    #[test]
    fn invariant_load_is_hoisted_and_result_unchanged() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let vals = bufs.add("vals", Buffer::F64(vec![2.0, 3.0].into()));
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0; 4].into()));
        let p = names.fresh("p");
        let i = names.fresh("i");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(1) },
            Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(3),
                body: vec![Stmt::Store {
                    buf: out,
                    index: Expr::Var(i),
                    value: Expr::mul(Expr::load(vals, Expr::Var(p)), Expr::load(x, Expr::Var(i))),
                    reduce: None,
                }],
            },
        ];

        let mut plain = Interpreter::new(&names);
        let mut plain_bufs = bufs.clone();
        plain.run(&prog, &mut plain_bufs).unwrap();

        let optimised = hoist_invariant_loads(&prog, &mut names);
        let mut opt = Interpreter::new(&names);
        let mut opt_bufs = bufs.clone();
        opt.run(&optimised, &mut opt_bufs).unwrap();

        assert_eq!(plain_bufs.get(out), opt_bufs.get(out));
        assert!(opt.stats().loads < plain.stats().loads);
        // The program changed shape: the loop is now preceded by a `let`.
        assert_ne!(optimised, prog);
    }

    #[test]
    fn loads_depending_on_loop_state_are_not_hoisted() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let vals = bufs.add("vals", Buffer::F64(vec![1.0, 2.0, 3.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(vals, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let optimised = hoist_invariant_loads(&prog, &mut names);
        assert_eq!(optimised, prog, "nothing to hoist");
    }

    #[test]
    fn loads_from_stored_buffers_are_not_hoisted() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let acc = bufs.add("acc", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: acc,
                index: Expr::int(0),
                value: Expr::add(Expr::load(acc, Expr::int(0)), Expr::int(1)),
                reduce: None,
            }],
        }];
        let optimised = hoist_invariant_loads(&prog, &mut names);
        assert_eq!(optimised, prog);
        let mut interp = Interpreter::new(&names);
        interp.run(&optimised, &mut bufs).unwrap();
        assert_eq!(bufs.get(acc).load(0), Value::Float(3.0));
    }

    #[test]
    fn loads_whose_index_reads_a_written_buffer_are_not_hoisted() {
        // for i { out.push(i); s[0] = x[len(out)] }: the candidate load
        // `x[len(out)]` has no loop-variant *variables*, but its index
        // reads `out`, which the loop appends to — hoisting it would read
        // the pre-loop length.  Same for an index that loads from a
        // stored buffer.
        let mut names = Names::new();
        let mut bufs = crate::buffer::BufferSet::new();
        let x = bufs.add("x", crate::buffer::Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", crate::buffer::Buffer::I64(vec![].into()));
        let s = bufs.add("s", crate::buffer::Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![
                Stmt::Append { buf: out, value: Expr::Var(i) },
                Stmt::Store {
                    buf: s,
                    index: Expr::int(0),
                    value: Expr::load(x, Expr::BufLen(out)),
                    reduce: None,
                },
            ],
        }];
        let optimised = hoist_invariant_loads(&prog, &mut names);
        assert_eq!(optimised, prog, "index reads a written buffer; nothing may hoist");
        let mut interp = crate::interp::Interpreter::new(&names);
        let mut run_bufs = bufs.clone();
        interp.run(&optimised, &mut run_bufs).unwrap();
        // After 3 iterations `len(out)` is 3 at the last store.
        assert_eq!(run_bufs.get(s).load(0), Value::Float(4.0));
    }

    #[test]
    fn guarded_loads_inside_branches_are_left_alone() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![5].into()));
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let i = names.fresh("i");
        // The load idx[9] would fault; it is guarded by `false` and must not
        // be hoisted out of the branch.
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(1),
            body: vec![Stmt::if_then(
                Expr::bool(false),
                vec![Stmt::Store {
                    buf: out,
                    index: Expr::int(0),
                    value: Expr::load(idx, Expr::int(9)),
                    reduce: None,
                }],
            )],
        }];
        let optimised = hoist_invariant_loads(&prog, &mut names);
        let mut interp = Interpreter::new(&names);
        assert!(interp.run(&optimised, &mut bufs).is_ok());
    }
}
