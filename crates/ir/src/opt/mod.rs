//! The staged optimisation pipeline over the target IR and its bytecode.
//!
//! The original Finch implementation emits Julia source and leans on the
//! host compiler to clean up the straight-line code its lowering produces:
//! constant folding, copy propagation, dead-branch pruning and
//! loop-invariant code motion all come for free there.  Our pipeline
//! executes the IR as lowered, so this module performs the same clean-up
//! explicitly, staged behind an [`OptLevel`]:
//!
//! * `fold` — constant folding, constant/copy propagation, and pruning of
//!   statically-decidable `if`/`while`/`for` statements,
//! * `licm` — loop-invariant load hoisting (the original pass of this
//!   module, still exported as [`hoist_invariant_loads`]),
//! * `dce` — dead-code and dead-store elimination for variables that are
//!   never read, plus removal of emptied control flow,
//! * [`peephole`] — a pass over compiled [`crate::bytecode::Program`]s that
//!   fuses hot instruction pairs into superinstructions and coalesces the
//!   temp registers; every fused instruction maintains
//!   [`crate::interp::ExecStats`] exactly like its unfused expansion, so
//!   tree-walk vs bytecode parity stays bit-for-bit at every opt level,
//! * [`typing`] — static register-type inference over the fused bytecode
//!   (seeded from the buffer schema and the constant pool) followed by a
//!   1:1 rewrite of proven-monomorphic instructions into typed forms the
//!   VM dispatches without any tag reads or writes,
//! * [`vectorize`] — kernel-op selection over the typed bytecode: each
//!   innermost typed counted loop whose body matches a canonical dense
//!   shape gains one vectorized superinstruction executing all but the
//!   final iteration over whole buffer slices, with the untouched scalar
//!   loop as both remainder handler and runtime fallback.
//!
//! All IR-level passes are *value-exact* for programs that complete: an
//! optimised program stores bit-identical results into every buffer.  The
//! machine-independent work counters ([`crate::interp::ExecStats`]) may
//! shrink across opt levels — that is the point — but remain identical
//! between the two engines at any given level, because both execute the
//! same optimised program.
//!
//! One standard compiler caveat applies to *faulting* programs:
//! expressions are pure but can raise runtime errors (an out-of-bounds
//! load, a division by zero), and removing a dead statement or a pruned
//! branch also removes any error its expressions would have raised.  A
//! program that faults at [`OptLevel::None`] can therefore complete at
//! [`OptLevel::Default`] — exactly as a native compiler deletes a faulting
//! dead load.  The compiler never emits such code (generated loads are
//! guarded), so this is only observable on hand-built IR.

mod dce;
mod fold;
mod licm;
#[cfg(test)]
mod mutation_tests;
mod pass;
mod peephole;
pub(crate) mod shard;
pub mod typing;
pub mod vectorize;
pub mod verify;

pub use licm::hoist_invariant_loads;
pub use pass::{
    Pass, PassCtx, PassError, PassManager, PassReport, Repr, StatsContract, ValidationLevel,
};
pub use peephole::peephole;
pub use typing::specialize;
pub use vectorize::vectorize;
pub use verify::{verify_bytecode, verify_ir};

use crate::buffer::BufferSet;
use crate::bytecode::Program;
use crate::stmt::Stmt;
use crate::var::Names;

/// How aggressively the compiler optimises lowered code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Execute the IR exactly as lowered: no IR passes, no bytecode
    /// peephole.  The baseline the benchmark harness measures speedups
    /// against.
    None,
    /// The standard pipeline: constant folding/propagation, loop-invariant
    /// load hoisting, dead-code elimination, and the bytecode peephole.
    #[default]
    Default,
    /// The [`OptLevel::Default`] pipeline iterated to a fixpoint, plus
    /// single-iteration (`lo == hi`) loop elimination.
    Aggressive,
}

impl OptLevel {
    /// A short stable label, used by the benchmark harness and its JSON
    /// report (`none` / `default` / `aggressive`).
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Default => "default",
            OptLevel::Aggressive => "aggressive",
        }
    }

    /// Parse a label produced by [`OptLevel::label`] (used by CLI flags).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "none" | "0" => Some(OptLevel::None),
            "default" | "1" => Some(OptLevel::Default),
            "aggressive" | "2" => Some(OptLevel::Aggressive),
            _ => None,
        }
    }

    /// All levels, in increasing aggressiveness.
    pub fn all() -> [OptLevel; 3] {
        [OptLevel::None, OptLevel::Default, OptLevel::Aggressive]
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-pass counters accumulated by one run of the optimisation pipeline,
/// surfaced on compiled kernels and in the benchmark JSON report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Constant (sub)expressions folded to literals.
    pub folds: u64,
    /// Variable reads replaced by a propagated constant or copied variable.
    pub copies_propagated: u64,
    /// `if` statements whose condition was statically decided.
    pub branches_pruned: u64,
    /// `while`/`for` loops removed because they statically never run (or,
    /// at [`OptLevel::Aggressive`], run exactly once and were unrolled).
    pub loops_removed: u64,
    /// Dead statements removed by DCE (never-read `let`/`assign` targets
    /// and emptied control flow).
    pub stmts_removed: u64,
    /// Loop-invariant loads hoisted out of loops by LICM.
    pub loads_hoisted: u64,
    /// Bytecode instruction pairs fused into superinstructions.
    pub instrs_fused: u64,
    /// Register-to-register moves eliminated by operand forwarding.
    pub movs_eliminated: u64,
    /// Registers trimmed from the register file by temp coalescing.
    pub regs_saved: u64,
    /// Bytecode instructions rewritten into monomorphic typed forms by
    /// the register-type inference pass ([`typing`]).
    pub instrs_typed: u64,
    /// Registers whose runtime tag the typing pass proved static and
    /// pinned ([`crate::bytecode::Program::pretags`]).
    pub regs_pretagged: u64,
    /// Scalar body instructions of innermost typed counted loops that the
    /// vectorize pass replaced with kernel ops ([`vectorize`]).
    pub instrs_vectorized: u64,
    /// Scalar body instructions of all innermost typed counted loops the
    /// vectorize pass examined (the denominator of the vectorized
    /// fraction).
    pub instrs_vectorizable: u64,
    /// IR statement count before the pipeline ran.
    pub ir_stmts_before: u64,
    /// IR statement count after the pipeline ran.
    pub ir_stmts_after: u64,
    /// Top-level counted loops the shard pass proved safe to split
    /// across worker threads ([`shard`]).
    pub loops_sharded: u64,
    /// Candidate loops the shard pass examined at the bytecode level and
    /// rejected (carried dependence, uncovered buffer write, ...).
    pub loops_shard_rejected: u64,
}

fn count_stmts(stmts: &[Stmt]) -> u64 {
    Stmt::count_matching(stmts, &|_| true) as u64
}

/// Constant folding, constant/copy propagation, and static control-flow
/// pruning (`fold`) as a [`Pass`].  Honours
/// [`PassCtx::unroll_point_loops`].
pub struct FoldPass;

impl Pass for FoldPass {
    fn name(&self) -> &'static str {
        "fold"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        Repr::Ir(fold::fold_stmts(&repr.into_ir(), ctx.unroll_point_loops, ctx.stats))
    }
    fn stats_contract(&self) -> StatsContract {
        StatsContract::Shrinks
    }
}

/// Loop-invariant load hoisting (`licm`) as a [`Pass`].  Creates fresh
/// variables in [`PassCtx::names`].
pub struct LicmPass;

impl Pass for LicmPass {
    fn name(&self) -> &'static str {
        "licm"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        Repr::Ir(licm::hoist_with_stats(&repr.into_ir(), ctx.names, ctx.stats))
    }
    fn stats_contract(&self) -> StatsContract {
        StatsContract::Hoisting
    }
}

/// Dead-code and dead-store elimination (`dce`) as a [`Pass`].
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        Repr::Ir(dce::eliminate_dead(&repr.into_ir(), ctx.stats))
    }
    fn stats_contract(&self) -> StatsContract {
        StatsContract::Shrinks
    }
}

/// IR-to-bytecode lowering ([`Program::compile`]) as a [`Pass`]: under
/// translation validation, this is the cross-engine differential check —
/// the pre-pass witness runs on the tree-walking interpreter and the
/// post-pass witness on the register VM.
pub struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &'static str {
        "lower"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        Repr::Bytecode(Program::compile(&repr.into_ir(), ctx.names))
    }
}

/// Bytecode superinstruction fusion and register coalescing
/// ([`peephole`]) as a [`Pass`].
pub struct PeepholePass;

impl Pass for PeepholePass {
    fn name(&self) -> &'static str {
        "peephole"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        Repr::Bytecode(peephole::peephole(&repr.into_bytecode(), ctx.stats))
    }
}

/// Static register-type inference and monomorphic rewriting
/// ([`typing`]) as a [`Pass`].  Requires [`PassCtx::bufs`]: the buffer
/// schema seeds the inference.
pub struct TypingPass;

impl Pass for TypingPass {
    fn name(&self) -> &'static str {
        "typing"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        let bufs = ctx.bufs.expect("the typing pass needs the kernel's buffer set");
        Repr::Bytecode(typing::specialize(&repr.into_bytecode(), bufs, ctx.stats))
    }
}

/// Vectorized kernel-op selection over typed bytecode ([`vectorize`])
/// as a [`Pass`].  Runs after [`TypingPass`] — only typed counted loops
/// match — and keeps [`crate::interp::ExecStats`] bit-identical (each
/// kernel op carries its scalar-equivalent per-iteration cost), so the
/// default [`StatsContract::Exact`] applies.
pub struct VectorizePass;

impl Pass for VectorizePass {
    fn name(&self) -> &'static str {
        "vectorize"
    }
    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        Repr::Bytecode(vectorize::vectorize(&repr.into_bytecode(), ctx.stats))
    }
}

/// The artifacts of one full [`optimize_and_lower`] pipeline run.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The optimised IR — what the tree-walking engine executes.
    pub code: Vec<Stmt>,
    /// The compiled (fused and, when enabled, typed) bytecode — what the
    /// register VM executes.
    pub program: Program,
    /// Accumulated per-pass counters.
    pub stats: OptStats,
    /// Per-pass wall-clock and validation timing, in execution order.
    pub reports: Vec<PassReport>,
}

/// Run the complete optimise-and-lower pipeline — the IR passes at the
/// given level, the bytecode lowering, and the bytecode passes — under a
/// translation-validated [`PassManager`].
///
/// `names` must be the table the program's variables were created from
/// (LICM creates fresh variables); `bufs` are the kernel's buffers, used
/// to seed the typing pass, check buffer schemas, and synthesize witness
/// inputs at [`ValidationLevel::Full`].
///
/// # Errors
///
/// Returns a [`PassError`] naming the offending pass when any pass's
/// output fails post-pass verification or diverges from its input program
/// on a witness run.
pub fn optimize_and_lower(
    stmts: &[Stmt],
    names: &mut Names,
    bufs: &BufferSet,
    level: OptLevel,
    typed: bool,
    simd: bool,
    validation: ValidationLevel,
) -> Result<Lowered, PassError> {
    let mut stats = OptStats { ir_stmts_before: count_stmts(stmts), ..OptStats::default() };
    let mut manager = PassManager::new(validation);
    let mut ctx = PassCtx {
        names,
        bufs: Some(bufs),
        stats: &mut stats,
        unroll_point_loops: level == OptLevel::Aggressive,
    };
    let code = match level {
        OptLevel::None => stmts.to_vec(),
        OptLevel::Default => run_ir_round(&mut manager, stmts.to_vec(), &mut ctx)?,
        OptLevel::Aggressive => {
            let mut code = stmts.to_vec();
            // Iterate to a fixpoint: folding can expose new invariant
            // loads, hoisting can expose new dead code, and so on.  The
            // bound is a safety net; real kernels settle in 2-3 rounds.
            for _ in 0..4 {
                let next = run_ir_round(&mut manager, code.clone(), &mut ctx)?;
                let settled = next == code;
                code = next;
                if settled {
                    break;
                }
            }
            code
        }
    };
    ctx.stats.ir_stmts_after = count_stmts(&code);
    let program = manager.run_pass(&LowerPass, Repr::Ir(code.clone()), &mut ctx)?.into_bytecode();
    let program = match level {
        OptLevel::None => program,
        _ => {
            let fused =
                manager.run_pass(&PeepholePass, Repr::Bytecode(program), &mut ctx)?.into_bytecode();
            if typed {
                let typed_prog =
                    manager.run_pass(&TypingPass, Repr::Bytecode(fused), &mut ctx)?.into_bytecode();
                if simd {
                    manager
                        .run_pass(&VectorizePass, Repr::Bytecode(typed_prog), &mut ctx)?
                        .into_bytecode()
                } else {
                    typed_prog
                }
            } else {
                fused
            }
        }
    };
    // Shardability analysis runs last, at every level (it only attaches
    // metadata — serial semantics are untouched), so the plan always
    // describes the final instruction stream.
    let specs = shard::analyze_ir(&code, ctx.names, bufs);
    let program = manager
        .run_pass(&shard::ShardPass { specs }, Repr::Bytecode(program), &mut ctx)?
        .into_bytecode();
    Ok(Lowered { code, program, stats, reports: manager.into_reports() })
}

/// Run the IR-level optimisation pipeline at the given level.
///
/// `names` must be the table the program's variables were created from;
/// LICM creates fresh variables for hoisted loads.  Returns the optimised
/// program together with the per-pass [`OptStats`].  The bytecode-level
/// passes are part of [`optimize_and_lower`], which also runs witness
/// validation; this IR-only entry point verifies statically (no buffer
/// set, so no witness runs) and panics on a verifier failure — its legacy
/// callers treat the pipeline as infallible.
pub fn optimize(stmts: &[Stmt], names: &mut Names, level: OptLevel) -> (Vec<Stmt>, OptStats) {
    let mut stats = OptStats { ir_stmts_before: count_stmts(stmts), ..OptStats::default() };
    let validation = match ValidationLevel::default() {
        // Witness synthesis needs the buffer set; cap at static checks.
        ValidationLevel::Full => ValidationLevel::Static,
        other => other,
    };
    let mut manager = PassManager::new(validation);
    let mut ctx = PassCtx {
        names,
        bufs: None,
        stats: &mut stats,
        unroll_point_loops: level == OptLevel::Aggressive,
    };
    let run = |manager: &mut PassManager, code: Vec<Stmt>, ctx: &mut PassCtx<'_>| {
        run_ir_round(manager, code, ctx).expect("IR pipeline produced invalid code")
    };
    let code = match level {
        OptLevel::None => stmts.to_vec(),
        OptLevel::Default => run(&mut manager, stmts.to_vec(), &mut ctx),
        OptLevel::Aggressive => {
            let mut code = stmts.to_vec();
            for _ in 0..4 {
                let next = run(&mut manager, code.clone(), &mut ctx);
                let settled = next == code;
                code = next;
                if settled {
                    break;
                }
            }
            code
        }
    };
    stats.ir_stmts_after = count_stmts(&code);
    (code, stats)
}

/// One fold → licm → dce round through the pass manager.
fn run_ir_round(
    manager: &mut PassManager,
    code: Vec<Stmt>,
    ctx: &mut PassCtx<'_>,
) -> Result<Vec<Stmt>, PassError> {
    let code = manager.run_pass(&FoldPass, Repr::Ir(code), ctx)?.into_ir();
    let code = manager.run_pass(&LicmPass, Repr::Ir(code), ctx)?.into_ir();
    Ok(manager.run_pass(&DcePass, Repr::Ir(code), ctx)?.into_ir())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::expr::Expr;
    use crate::interp::Interpreter;
    use crate::value::Value;

    /// Optimising at every level must leave buffer contents bit-identical.
    fn assert_value_exact(prog: &[Stmt], names: &Names, bufs: &BufferSet) {
        let mut reference: Option<BufferSet> = None;
        for level in OptLevel::all() {
            let mut names = names.clone();
            let (code, _) = optimize(prog, &mut names, level);
            let mut bufs = bufs.clone();
            let mut interp = Interpreter::new(&names);
            interp.run(&code, &mut bufs).expect("optimised program runs");
            match &reference {
                Option::None => reference = Some(bufs),
                Some(r) => {
                    for (id, name, buf) in r.iter() {
                        assert_eq!(buf, bufs.get(id), "buffer {name} diverges at {level}");
                    }
                }
            }
        }
    }

    #[test]
    fn pipeline_folds_propagates_and_removes_dead_code() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let a = names.fresh("a");
        let b = names.fresh("b");
        let dead = names.fresh("dead");
        let prog = vec![
            // a = 2 + 3 folds to 5; b = a propagates; dead is never read.
            Stmt::Let { var: a, init: Expr::add(Expr::int(2), Expr::int(3)) },
            Stmt::Let { var: b, init: Expr::Var(a) },
            Stmt::Let { var: dead, init: Expr::mul(Expr::Var(b), Expr::int(7)) },
            Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::add(Expr::Var(b), Expr::int(1)),
                reduce: Option::None,
            },
        ];
        let (code, stats) = optimize(&prog, &mut names.clone(), OptLevel::Default);
        assert!(stats.folds > 0, "constant folding ran: {stats:?}");
        assert!(stats.copies_propagated > 0, "propagation ran: {stats:?}");
        assert!(stats.stmts_removed > 0, "dead lets removed: {stats:?}");
        assert!(stats.ir_stmts_after < stats.ir_stmts_before, "{stats:?}");
        // The store's value folded all the way to the literal 6.
        let folded = Stmt::count_matching(&code, &|s| {
            matches!(s, Stmt::Store { value: Expr::Lit(Value::Int(6)), .. })
        });
        assert_eq!(folded, 1, "store value fully folded:\n{code:?}");
        assert_value_exact(&prog, &names, &bufs);
    }

    #[test]
    fn statically_false_branches_and_loops_are_pruned() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let i = names.fresh("i");
        let prog = vec![
            Stmt::If {
                cond: Expr::bool(false),
                then_branch: vec![Stmt::Store {
                    buf: out,
                    index: Expr::int(0),
                    value: Expr::int(1),
                    reduce: Option::None,
                }],
                else_branch: vec![Stmt::Store {
                    buf: out,
                    index: Expr::int(0),
                    value: Expr::int(2),
                    reduce: Option::None,
                }],
            },
            Stmt::While { cond: Expr::bool(false), body: vec![Stmt::Comment("never".into())] },
            Stmt::For {
                var: i,
                lo: Expr::int(5),
                hi: Expr::int(2),
                body: vec![Stmt::Comment("empty range".into())],
            },
        ];
        let (code, stats) = optimize(&prog, &mut names.clone(), OptLevel::Default);
        assert!(stats.branches_pruned >= 1, "{stats:?}");
        assert!(stats.loops_removed >= 2, "{stats:?}");
        assert_eq!(Stmt::count_matching(&code, &|s| matches!(s, Stmt::While { .. })), 0);
        assert_eq!(Stmt::count_matching(&code, &|s| matches!(s, Stmt::For { .. })), 0);
        assert_value_exact(&prog, &names, &bufs);
    }

    #[test]
    fn aggressive_unrolls_single_iteration_loops() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(1),
            hi: Expr::int(1),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Option::None,
            }],
        }];
        let (default_code, _) = optimize(&prog, &mut names.clone(), OptLevel::Default);
        assert_eq!(
            Stmt::count_matching(&default_code, &|s| matches!(s, Stmt::For { .. })),
            1,
            "default keeps the loop"
        );
        let (aggr_code, stats) = optimize(&prog, &mut names.clone(), OptLevel::Aggressive);
        assert_eq!(
            Stmt::count_matching(&aggr_code, &|s| matches!(s, Stmt::For { .. })),
            0,
            "aggressive unrolls the point loop:\n{aggr_code:?}"
        );
        assert!(stats.loops_removed >= 1);
        assert_value_exact(&prog, &names, &bufs);
    }

    #[test]
    fn opt_level_none_is_the_identity() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let prog = vec![Stmt::Let { var: a, init: Expr::add(Expr::int(1), Expr::int(2)) }];
        let (code, stats) = optimize(&prog, &mut names, OptLevel::None);
        assert_eq!(code, prog);
        assert_eq!(stats.folds, 0);
        assert_eq!(stats.ir_stmts_before, stats.ir_stmts_after);
    }

    #[test]
    fn labels_round_trip() {
        for level in OptLevel::all() {
            assert_eq!(OptLevel::parse(level.label()), Some(level));
            assert_eq!(format!("{level}"), level.label());
        }
        assert_eq!(OptLevel::parse("bogus"), Option::None);
        assert_eq!(OptLevel::default(), OptLevel::Default);
    }
}
