//! Shardability analysis: prove an outermost counted loop safe to split
//! across worker threads, and record *how* in a [`ShardPlan`].
//!
//! The analysis runs in two stages that cross-check each other:
//!
//! 1. **IR stage** ([`analyze_ir`]): on the final optimized statement
//!    tree, every top-level counted `for` loop is examined against an
//!    affine model of its buffer accesses.  For each buffer the loop
//!    writes, the analysis must derive a [`ShardRole`] — partitioned by
//!    the loop index, append-only segment output, fiber-boundary stream,
//!    a recognized associative integer reduction, or iteration-private
//!    scratch — or the loop is rejected.  Any cross-iteration carry
//!    (a value flowing from one iteration into the next through a
//!    variable or a buffer) rejects the loop.
//! 2. **Bytecode stage** ([`ShardPass`]): after lowering, peephole
//!    fusion, typing, and vectorization, the candidate loops are located
//!    in the flat bytecode and re-verified *structurally*: the loop must
//!    be a well-formed counted region, its loop registers must not be
//!    written by the body, no jump may enter the region from outside,
//!    a must-defined dataflow over the body proves no register carries a
//!    value between iterations, registers read after the region are
//!    proven recomputed by every iteration, and every buffer the body
//!    writes must be covered by an IR-derived role.  Only loops passing
//!    both stages are recorded in the program's [`ShardPlan`].
//!
//! The pass itself transforms nothing — serial execution ignores the
//! plan entirely — so it is trivially translation-validated under the
//! exact-stats contract.  The *parallel* interpretation of the plan
//! lives in [`crate::par`], and is separately validated against the
//! serial run by the pass manager's sharded witness check.

use std::collections::{HashMap, HashSet};

use crate::buffer::{BufId, Buffer, BufferSet};
use crate::bytecode::{Instr, Program, Reg, ShardPlan, ShardRegion, ShardRole, VBase, VRhs};
use crate::expr::{BinOp, Expr, UnOp};
use crate::stmt::Stmt;
use crate::value::Value;
use crate::var::{Names, Var};

use super::pass::{Pass, PassCtx, Repr};
use super::OptStats;

// ---------------------------------------------------------------------
// IR stage
// ---------------------------------------------------------------------

/// The IR-derived shardability facts for one candidate loop, keyed by
/// the loop variable's name (names are globally unique, so the bytecode
/// stage can re-find the loop after lowering).
#[derive(Debug, Clone)]
pub(crate) struct LoopSpec {
    /// The loop variable's source name.
    pub(crate) var_name: String,
    /// The role of every buffer the loop body writes.
    pub(crate) roles: Vec<(BufId, ShardRole)>,
}

/// Analyze the final optimized IR and return a [`LoopSpec`] for every
/// top-level counted loop whose buffer accesses prove shardable.
pub(crate) fn analyze_ir(code: &[Stmt], names: &Names, bufs: &BufferSet) -> Vec<LoopSpec> {
    let mut specs: Vec<LoopSpec> = Vec::new();
    collect_candidates(code, names, bufs, &mut specs);
    // A duplicated loop-variable name would make the bytecode-side match
    // ambiguous; drop all specs sharing a name (never happens with
    // `Names::fresh`, but cheap to guard).
    let mut counts: HashMap<String, usize> = HashMap::new();
    for s in &specs {
        *counts.entry(s.var_name.clone()).or_insert(0) += 1;
    }
    specs.retain(|s| counts[&s.var_name] == 1);
    specs
}

/// Walk top-level statements (through blocks and `if` branches, but not
/// into loop bodies) collecting shardable loops.
fn collect_candidates(stmts: &[Stmt], names: &Names, bufs: &BufferSet, out: &mut Vec<LoopSpec>) {
    for s in stmts {
        match s {
            Stmt::For { var, body, .. } => {
                if let Some(roles) = analyze_loop(*var, body, bufs) {
                    out.push(LoopSpec { var_name: names.name(*var).to_string(), roles });
                }
            }
            Stmt::If { then_branch, else_branch, .. } => {
                collect_candidates(then_branch, names, bufs, out);
                collect_candidates(else_branch, names, bufs, out);
            }
            Stmt::Block(inner) => collect_candidates(inner, names, bufs, out),
            _ => {}
        }
    }
}

/// An affine abstraction of an integer value inside the loop body:
/// `value ∈ k·i + [lo, hi]` where `i` is the outer loop variable.
/// All arithmetic is checked; overflow abandons the abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Aff {
    k: i64,
    lo: i64,
    hi: i64,
}

impl Aff {
    fn konst(c: i64) -> Aff {
        Aff { k: 0, lo: c, hi: c }
    }
    fn outer() -> Aff {
        Aff { k: 1, lo: 0, hi: 0 }
    }
    /// The exact constant this abstraction denotes, if it is one.
    fn as_const(self) -> Option<i64> {
        (self.k == 0 && self.lo == self.hi).then_some(self.lo)
    }
    fn add(self, o: Aff) -> Option<Aff> {
        Some(Aff {
            k: self.k.checked_add(o.k)?,
            lo: self.lo.checked_add(o.lo)?,
            hi: self.hi.checked_add(o.hi)?,
        })
    }
    fn sub(self, o: Aff) -> Option<Aff> {
        Some(Aff {
            k: self.k.checked_sub(o.k)?,
            lo: self.lo.checked_sub(o.hi)?,
            hi: self.hi.checked_sub(o.lo)?,
        })
    }
    fn mul_const(self, c: i64) -> Option<Aff> {
        let (lo, hi) = if c >= 0 {
            (self.lo.checked_mul(c)?, self.hi.checked_mul(c)?)
        } else {
            (self.hi.checked_mul(c)?, self.lo.checked_mul(c)?)
        };
        Some(Aff { k: self.k.checked_mul(c)?, lo, hi })
    }
    /// Interval join of two abstractions with the same slope.
    fn join(self, o: Aff) -> Option<Aff> {
        (self.k == o.k).then_some(Aff { k: self.k, lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) })
    }
}

/// What the analysis knows about a variable's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Affine in the outer loop variable (and therefore an integer).
    Aff(Aff),
    /// An integer of unknown value.
    Int,
    /// Unknown (possibly float, missing, ...).
    Top,
}

type Env = HashMap<Var, AbsVal>;

/// One recorded `Store` to a buffer inside the loop body.
#[derive(Debug, Clone, Copy)]
struct StoreEv {
    /// Affine abstraction of the index, when derivable.
    idx: Option<Aff>,
    /// The reduction operator, `None` for a plain store.
    reduce: Option<BinOp>,
    /// Whether the stored value is provably an integer.
    int_val: bool,
    /// Whether a plain store to the same constant index dominates this
    /// access within the current iteration.
    dominated: bool,
}

/// One recorded `Load` of a buffer inside the loop body.
#[derive(Debug, Clone, Copy)]
struct LoadEv {
    idx: Option<Aff>,
    dominated: bool,
}

/// Accumulated accesses to one buffer over the loop body.
#[derive(Debug, Default)]
struct BufAcc {
    stores: Vec<StoreEv>,
    loads: Vec<LoadEv>,
    appends: u32,
    /// `Some(data)` when this buffer receives `FiberEnd { pos: this, data }`.
    fiber_pos_for: Option<BufId>,
    /// Two `FiberEnd`s with different `data`, or other pos-buffer abuse.
    fiber_conflict: bool,
    buflen: bool,
    searched: bool,
}

struct Walker<'a> {
    outer: Var,
    bufs: &'a BufferSet,
    acc: HashMap<BufId, BufAcc>,
    reject: bool,
}

impl<'a> Walker<'a> {
    fn acc(&mut self, buf: BufId) -> &mut BufAcc {
        self.acc.entry(buf).or_default()
    }

    /// Record every buffer access an expression performs.  Loads carry
    /// their affine index; searches and explicit length reads taint the
    /// buffer for any write role.
    fn scan_expr(&mut self, e: &Expr, env: &Env, defined: &HashSet<(BufId, i64)>) {
        let outer = self.outer;
        let mut events: Vec<(BufId, u8, Option<Aff>)> = Vec::new();
        e.visit(&mut |node| match node {
            Expr::Load { buf, index } => {
                events.push((*buf, 0, eval_aff(index, outer, env)));
            }
            Expr::BufLen(b) => events.push((*b, 1, None)),
            Expr::Search { buf, .. } => events.push((*buf, 2, None)),
            _ => {}
        });
        for (buf, kind, idx) in events {
            match kind {
                0 => {
                    let dominated =
                        idx.and_then(Aff::as_const).is_some_and(|c| defined.contains(&(buf, c)));
                    self.acc(buf).loads.push(LoadEv { idx, dominated });
                }
                1 => self.acc(buf).buflen = true,
                _ => self.acc(buf).searched = true,
            }
        }
    }

    /// Walk a statement sequence, updating the abstract environment and
    /// the per-iteration "privately defined" set.
    fn walk(&mut self, stmts: &[Stmt], env: &mut Env, defined: &mut HashSet<(BufId, i64)>) {
        for s in stmts {
            if self.reject {
                return;
            }
            match s {
                Stmt::Comment(_) => {}
                Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                    if *var == self.outer {
                        // Writing the loop variable is a carried dependence.
                        self.reject = true;
                        return;
                    }
                    self.scan_expr(init, env, defined);
                    let abs = match eval_aff(init, self.outer, env) {
                        Some(a) => AbsVal::Aff(a),
                        None if is_int_expr(init, env, self.bufs) => AbsVal::Int,
                        None => AbsVal::Top,
                    };
                    env.insert(*var, abs);
                }
                Stmt::Store { buf, index, value, reduce } => {
                    self.scan_expr(index, env, defined);
                    self.scan_expr(value, env, defined);
                    let idx = eval_aff(index, self.outer, env);
                    let cidx = idx.and_then(Aff::as_const);
                    let dominated = cidx.is_some_and(|c| defined.contains(&(*buf, c)));
                    let int_val = is_int_expr(value, env, self.bufs);
                    self.acc(*buf).stores.push(StoreEv {
                        idx,
                        reduce: *reduce,
                        int_val,
                        dominated,
                    });
                    if reduce.is_none() {
                        if let Some(c) = cidx {
                            defined.insert((*buf, c));
                        }
                    }
                }
                Stmt::Append { buf, value } => {
                    self.scan_expr(value, env, defined);
                    self.acc(*buf).appends += 1;
                }
                Stmt::FiberEnd { pos, data } => {
                    let slot = self.acc(*pos);
                    match slot.fiber_pos_for {
                        None => slot.fiber_pos_for = Some(*data),
                        Some(d) if d == *data => {}
                        Some(_) => slot.fiber_conflict = true,
                    }
                }
                Stmt::If { cond, then_branch, else_branch } => {
                    self.scan_expr(cond, env, defined);
                    let mut env_t = env.clone();
                    let mut def_t = defined.clone();
                    self.walk(then_branch, &mut env_t, &mut def_t);
                    let mut env_e = env.clone();
                    let mut def_e = defined.clone();
                    self.walk(else_branch, &mut env_e, &mut def_e);
                    *env = meet_env(&env_t, &env_e);
                    *defined = def_t.intersection(&def_e).copied().collect();
                }
                Stmt::While { cond, body } => {
                    // The body may run zero or many times: poison every
                    // variable it assigns, walk it once for its buffer
                    // events, and discard its define effects.
                    poison_assigned(body, env);
                    self.scan_expr(cond, env, defined);
                    let mut env_b = env.clone();
                    let mut def_b = defined.clone();
                    self.walk(body, &mut env_b, &mut def_b);
                    poison_assigned(body, env);
                }
                Stmt::For { var, lo, hi, body } => {
                    if *var == self.outer {
                        self.reject = true;
                        return;
                    }
                    self.scan_expr(lo, env, defined);
                    self.scan_expr(hi, env, defined);
                    let lo_a = eval_aff(lo, self.outer, env);
                    let hi_a = eval_aff(hi, self.outer, env);
                    poison_assigned(body, env);
                    let var_abs = match (lo_a, hi_a) {
                        (Some(a), Some(b)) if a.k == b.k => {
                            AbsVal::Aff(Aff { k: a.k, lo: a.lo, hi: b.hi })
                        }
                        _ => AbsVal::Int,
                    };
                    let mut env_b = env.clone();
                    env_b.insert(*var, var_abs);
                    let mut def_b = defined.clone();
                    self.walk(body, &mut env_b, &mut def_b);
                    // Defines escape the inner loop only when it provably
                    // runs at least once.
                    let guaranteed =
                        match (lo_a.and_then(Aff::as_const), hi_a.and_then(Aff::as_const)) {
                            (Some(l), Some(h)) => l <= h,
                            _ => false,
                        };
                    if guaranteed {
                        *defined = def_b;
                    }
                    poison_assigned(body, env);
                    env.insert(*var, AbsVal::Int);
                }
                Stmt::Block(inner) => self.walk(inner, env, defined),
            }
        }
    }
}

/// Poison (set to [`AbsVal::Top`]) every variable a statement list
/// assigns, including in nested bodies.
fn poison_assigned(stmts: &[Stmt], env: &mut Env) {
    for s in stmts {
        s.visit(&mut |node| match node {
            Stmt::Let { var, .. } | Stmt::Assign { var, .. } | Stmt::For { var, .. } => {
                env.insert(*var, AbsVal::Top);
            }
            _ => {}
        });
    }
}

/// Pointwise meet of two environments after an `if`.
fn meet_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (v, &va) in a {
        let Some(&vb) = b.get(v) else { continue };
        let m = match (va, vb) {
            (x, y) if x == y => x,
            (AbsVal::Aff(x), AbsVal::Aff(y)) => match x.join(y) {
                Some(j) => AbsVal::Aff(j),
                None => AbsVal::Int,
            },
            (AbsVal::Aff(_) | AbsVal::Int, AbsVal::Aff(_) | AbsVal::Int) => AbsVal::Int,
            _ => AbsVal::Top,
        };
        out.insert(*v, m);
    }
    out
}

/// Evaluate an expression to an affine abstraction in the outer loop
/// variable, when possible.
fn eval_aff(e: &Expr, outer: Var, env: &Env) -> Option<Aff> {
    match e {
        Expr::Lit(Value::Int(c)) => Some(Aff::konst(*c)),
        Expr::Var(v) if *v == outer => Some(Aff::outer()),
        Expr::Var(v) => match env.get(v) {
            Some(AbsVal::Aff(a)) => Some(*a),
            _ => None,
        },
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_aff(lhs, outer, env)?;
            let b = eval_aff(rhs, outer, env)?;
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => {
                    if let Some(c) = b.as_const() {
                        a.mul_const(c)
                    } else if let Some(c) = a.as_const() {
                        b.mul_const(c)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Whether an expression provably evaluates to an integer (needed so an
/// integer reduction cannot silently truncate a float contribution).
fn is_int_expr(e: &Expr, env: &Env, bufs: &BufferSet) -> bool {
    match e {
        Expr::Lit(Value::Int(_)) => true,
        Expr::Var(v) => matches!(env.get(v), Some(AbsVal::Aff(_) | AbsVal::Int)),
        Expr::BufLen(_) => true,
        Expr::Load { buf, .. } => matches!(bufs.get(*buf), Buffer::I64(_)),
        Expr::Unary { op: UnOp::Neg | UnOp::Abs, arg } => is_int_expr(arg, env, bufs),
        Expr::Binary {
            op: BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Min | BinOp::Max,
            lhs,
            rhs,
        } => is_int_expr(lhs, env, bufs) && is_int_expr(rhs, env, bufs),
        _ => false,
    }
}

/// Analyze one candidate loop body; returns the per-buffer roles when
/// every written buffer admits one, or `None` to reject the loop.
fn analyze_loop(outer: Var, body: &[Stmt], bufs: &BufferSet) -> Option<Vec<(BufId, ShardRole)>> {
    let mut w = Walker { outer, bufs, acc: HashMap::new(), reject: false };
    let mut env = Env::new();
    env.insert(outer, AbsVal::Aff(Aff::outer()));
    let mut defined = HashSet::new();
    w.walk(body, &mut env, &mut defined);
    if w.reject {
        return None;
    }
    resolve_roles(&w.acc, &defined, bufs)
}

/// Derive a [`ShardRole`] for every written buffer from its recorded
/// accesses, or reject.
fn resolve_roles(
    acc: &HashMap<BufId, BufAcc>,
    defined_at_end: &HashSet<(BufId, i64)>,
    bufs: &BufferSet,
) -> Option<Vec<(BufId, ShardRole)>> {
    let mut roles: Vec<(BufId, ShardRole)> = Vec::new();
    let mut ids: Vec<BufId> = acc.keys().copied().collect();
    ids.sort_by_key(|b| b.index());
    for buf in ids {
        let a = &acc[&buf];
        let written = !a.stores.is_empty() || a.appends > 0 || a.fiber_pos_for.is_some();
        if !written {
            continue; // read-only: shards share the master's buffer
        }
        if a.fiber_conflict || a.searched {
            return None;
        }
        let role = if let Some(data) = a.fiber_pos_for {
            // Fiber-boundary stream: nothing but FiberEnds may touch it,
            // and its data array must itself be a clean segment stream
            // (or untouched) so per-shard lengths can be offset-fixed.
            if !a.stores.is_empty() || a.appends > 0 || !a.loads.is_empty() || a.buflen {
                return None;
            }
            if let Some(d) = acc.get(&data) {
                let data_clean = d.stores.is_empty()
                    && d.loads.is_empty()
                    && !d.buflen
                    && !d.searched
                    && d.fiber_pos_for.is_none();
                if !data_clean {
                    return None;
                }
            }
            ShardRole::SegmentPos { data }
        } else if a.appends > 0 {
            // Append-only segment output: appends land in iteration
            // order, so concatenating per-shard suffixes in shard order
            // reproduces the serial layout.  Any other observation of
            // the buffer would see a shard-local length or element.
            if !a.stores.is_empty() || !a.loads.is_empty() || a.buflen {
                return None;
            }
            ShardRole::Segment
        } else {
            resolve_store_role(buf, a, defined_at_end, bufs)?
        };
        roles.push((buf, role));
    }
    Some(roles)
}

/// Role resolution for a buffer written only by `Store`s.
fn resolve_store_role(
    buf: BufId,
    a: &BufAcc,
    defined_at_end: &HashSet<(BufId, i64)>,
    bufs: &BufferSet,
) -> Option<ShardRole> {
    // Every store index must be affine in the outer variable.
    let idxs: Option<Vec<Aff>> = a.stores.iter().map(|s| s.idx).collect();
    let idxs = idxs?;
    let consts: Option<Vec<i64>> = idxs.iter().map(|i| i.as_const()).collect();

    if let Some(consts) = consts {
        // All accesses sit at loop-invariant constant indices: the
        // buffer is either iteration-private scratch or an accumulator.
        let load_consts: Option<Vec<i64>> =
            a.loads.iter().map(|l| l.idx.and_then(Aff::as_const)).collect();
        let load_consts = load_consts?;
        let private_ok = a.stores.iter().all(|s| s.reduce.is_none() || s.dominated)
            && a.loads.iter().all(|l| l.dominated)
            && consts.iter().chain(load_consts.iter()).all(|c| defined_at_end.contains(&(buf, *c)));
        if private_ok {
            // Every read is dominated by a plain store in the same
            // iteration and every touched element is re-defined by every
            // iteration, so the last shard's copy *is* the serial state.
            return Some(ShardRole::Private);
        }
        // Associative integer reduction: all stores reduce the same
        // element with the same associative integer operator, no loads
        // observe partial values, and every contribution is an integer.
        let op = a.stores.first()?.reduce?;
        if !matches!(op, BinOp::Add | BinOp::Min | BinOp::Max) {
            return None;
        }
        if !a.stores.iter().all(|s| s.reduce == Some(op) && s.int_val) {
            return None;
        }
        if !a.loads.is_empty() || !matches!(bufs.get(buf), Buffer::I64(_)) {
            return None;
        }
        let index = consts[0];
        if !consts.iter().all(|&c| c == index) {
            return None;
        }
        return Some(ShardRole::Reduction { index, op });
    }

    // Partitioned by the loop index: every store (and every load of the
    // buffer) targets `stride·i + t` with `0 <= t < stride`, so each
    // element is owned by exactly one iteration — and hence one shard.
    let stride = idxs[0].k;
    if stride < 1 {
        return None;
    }
    let in_own_row = |x: &Aff| x.k == stride && x.lo >= 0 && x.hi < stride;
    if !idxs.iter().all(in_own_row) {
        return None;
    }
    for l in &a.loads {
        let idx = l.idx?;
        if !in_own_row(&idx) {
            return None;
        }
    }
    Some(ShardRole::Partitioned { stride })
}

// ---------------------------------------------------------------------
// Bytecode stage
// ---------------------------------------------------------------------

/// The shardability pass: locates the IR-approved loops in the lowered
/// bytecode, re-verifies them structurally, and attaches the resulting
/// [`ShardPlan`] to the program.  Serial semantics are untouched.
pub struct ShardPass {
    /// IR-derived facts from [`analyze_ir`], keyed by loop-variable name.
    pub(crate) specs: Vec<LoopSpec>,
}

impl Pass for ShardPass {
    fn name(&self) -> &'static str {
        "shard"
    }

    fn run(&self, repr: Repr, ctx: &mut PassCtx<'_>) -> Repr {
        let mut p = repr.into_bytecode();
        p.shard_plan = plan_regions(&p, &self.specs, ctx.stats);
        Repr::Bytecode(p)
    }
}

/// Scan the program for top-level counted loops matching an IR spec and
/// verify each structurally.
fn plan_regions(p: &Program, specs: &[LoopSpec], stats: &mut OptStats) -> ShardPlan {
    let code = p.code();
    let mut regions = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let skip_to = match code[pc] {
            Instr::ForTest { counter, hi, var, end }
            | Instr::IForTest { counter, hi, var, end } => {
                if let Some(spec) = specs.iter().find(|s| p.reg_name(var) == s.var_name) {
                    match check_region(p, pc, end as usize, counter, hi, var, spec) {
                        Some(region) => {
                            regions.push(region);
                            stats.loops_sharded += 1;
                        }
                        None => stats.loops_shard_rejected += 1,
                    }
                }
                end as usize
            }
            Instr::WhileTest { end, .. }
            | Instr::WhileCmp { end, .. }
            | Instr::WhileCmpImm { end, .. }
            | Instr::IWhileCmp { end, .. }
            | Instr::IWhileCmpImm { end, .. }
            | Instr::FWhileCmp { end, .. } => end as usize,
            _ => pc + 1,
        };
        if skip_to <= pc {
            break; // malformed loop bounds: abandon the scan
        }
        pc = skip_to;
    }
    ShardPlan { regions }
}

/// Verify one candidate loop `[head, end)` structurally and build its
/// [`ShardRegion`], or reject with `None`.
fn check_region(
    p: &Program,
    head: usize,
    end: usize,
    counter: Reg,
    hi: Reg,
    var: Reg,
    spec: &LoopSpec,
) -> Option<ShardRegion> {
    let code = p.code();
    if end <= head + 1 || end > code.len() {
        return None;
    }
    // (A) The back-edge must be the loop's own `ForStep`.
    match code[end - 1] {
        Instr::ForStep { counter: c, test } if c == counter && test == head as u32 => {}
        _ => return None,
    }
    // (B) A vectorized kernel op driving the same loop registers sits
    // immediately before the head and belongs to the region: each shard
    // must re-run it over its own sub-range.
    let start = if head > 0 && vop_loop_regs(&code[head - 1]) == Some((counter, hi)) {
        head - 1
    } else {
        head
    };
    // (C) The body must not write the loop registers, and we collect the
    // set `w` of registers it does write.
    let mut w = RegSet::new(p.num_regs());
    for instr in &code[head + 1..end - 1] {
        let mut bad = false;
        for_each_write(instr, &mut |r| {
            if r == counter || r == hi || r == var {
                bad = true;
            }
            w.insert(r);
        });
        if bad {
            return None;
        }
    }
    // (D) Jump discipline: body jumps stay inside `(head, end]`; no jump
    // from outside the region may target its interior.
    for (pc, instr) in code.iter().enumerate() {
        let inside_body = pc > head && pc < end - 1;
        let mut bad = false;
        for_each_target(instr, &mut |t| {
            let t = t as usize;
            if inside_body {
                if t <= head || t > end {
                    bad = true;
                }
            } else if (pc < start || pc >= end) && t > start && t < end {
                bad = true;
            }
        });
        if bad {
            return None;
        }
    }
    // (E) Must-defined dataflow over one iteration: any body-written
    // register read by the body must be re-defined earlier in the same
    // iteration — otherwise its value carries across iterations and the
    // shard boundaries would change it.
    let defined_at_end = must_defined_check(p, head, end, counter, hi, var, &w)?;
    // (F) Registers read after the region must not expose a stale shard
    // value: every body-written register read downstream must be proven
    // either re-defined after the region or re-defined by *every*
    // iteration (the adopted last shard ran the final iteration).
    post_region_check(p, end, counter, hi, var, &w, &defined_at_end)?;
    // (G) Every buffer the region writes must carry an IR-derived role.
    for instr in &code[start..end - 1] {
        let mut bad = false;
        for_each_written_buf(instr, &mut |b| {
            if !spec.roles.iter().any(|(rb, _)| *rb == b) {
                bad = true;
            }
        });
        if bad {
            return None;
        }
    }
    Some(ShardRegion {
        start: start as u32,
        head: head as u32,
        end: end as u32,
        counter,
        hi,
        var,
        roles: spec.roles.clone(),
    })
}

/// The `(counter, hi)` loop registers of a vectorized kernel op.
fn vop_loop_regs(instr: &Instr) -> Option<(Reg, Reg)> {
    match *instr {
        Instr::VFillStoreF64 { counter, hi, .. }
        | Instr::VMapF64 { counter, hi, .. }
        | Instr::VMulAddF64 { counter, hi, .. }
        | Instr::VReduceF64 { counter, hi, .. }
        | Instr::VAppendRangeF64 { counter, hi, .. }
        | Instr::VCmpSelectU8 { counter, hi, .. } => Some((counter, hi)),
        _ => None,
    }
}

/// A dense register bit-set.
#[derive(Clone, PartialEq, Eq)]
struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    fn new(num_regs: usize) -> RegSet {
        RegSet { words: vec![0; num_regs.div_ceil(64)] }
    }
    fn full(num_regs: usize) -> RegSet {
        RegSet { words: vec![!0u64; num_regs.div_ceil(64)] }
    }
    fn insert(&mut self, r: Reg) {
        self.words[r.index() / 64] |= 1 << (r.index() % 64);
    }
    fn contains(&self, r: Reg) -> bool {
        self.words[r.index() / 64] & (1 << (r.index() % 64)) != 0
    }
    fn intersect_with(&mut self, o: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&o.words) {
            let next = *a & *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }
}

/// Forward must-defined dataflow over the loop span `[head, end)`.
/// Returns the defined set entering the back-edge (`IN[end-1]`) on
/// success, `None` when some body read may observe a carried value.
fn must_defined_check(
    p: &Program,
    head: usize,
    end: usize,
    counter: Reg,
    hi: Reg,
    var: Reg,
    w: &RegSet,
) -> Option<RegSet> {
    let code = p.code();
    let n = end - head;
    let num_regs = p.num_regs();
    let mut seed = RegSet::new(num_regs);
    seed.insert(counter);
    seed.insert(hi);
    seed.insert(var);
    let mut ins: Vec<RegSet> = (0..n).map(|_| RegSet::full(num_regs)).collect();
    ins[0] = seed;
    // Iterate to a fixpoint (sets only shrink, so this terminates).
    loop {
        let mut changed = false;
        for i in 0..n {
            let pc = head + i;
            let mut out = ins[i].clone();
            for_each_write(&code[pc], &mut |r| out.insert(r));
            let mut push = |succ: usize| {
                if succ >= head && succ < end && ins[succ - head].intersect_with(&out) {
                    changed = true;
                }
            };
            if falls_through(&code[pc]) {
                push(pc + 1);
            }
            for_each_target(&code[pc], &mut |t| push(t as usize));
        }
        if !changed {
            break;
        }
    }
    // Check every read.
    for (i, live_in) in ins.iter().enumerate() {
        let pc = head + i;
        let mut bad = false;
        for_each_read(&code[pc], &mut |r| {
            if w.contains(r) && r != counter && r != hi && r != var && !live_in.contains(r) {
                bad = true;
            }
        });
        if bad {
            return None;
        }
    }
    Some(ins[n - 1].clone())
}

/// Must-defined dataflow over the code after the region: a body-written
/// register read downstream must be defined on every path from the
/// region exit — either re-written after the region, guaranteed by the
/// final iteration (`defined_at_end`), or a loop register.
fn post_region_check(
    p: &Program,
    end: usize,
    counter: Reg,
    hi: Reg,
    var: Reg,
    w: &RegSet,
    defined_at_end: &RegSet,
) -> Option<()> {
    let code = p.code();
    let len = code.len();
    if end >= len {
        return Some(());
    }
    let n = len - end;
    let num_regs = p.num_regs();
    let mut seed = defined_at_end.clone();
    seed.insert(counter);
    seed.insert(hi);
    seed.insert(var);
    let mut ins: Vec<RegSet> = (0..n).map(|_| RegSet::full(num_regs)).collect();
    ins[0] = seed;
    loop {
        let mut changed = false;
        for i in 0..n {
            let pc = end + i;
            let mut out = ins[i].clone();
            for_each_write(&code[pc], &mut |r| out.insert(r));
            let mut push = |succ: usize| {
                if succ >= end && succ < len && ins[succ - end].intersect_with(&out) {
                    changed = true;
                }
            };
            if falls_through(&code[pc]) {
                push(pc + 1);
            }
            for_each_target(&code[pc], &mut |t| push(t as usize));
        }
        if !changed {
            break;
        }
    }
    for (i, live_in) in ins.iter().enumerate() {
        let pc = end + i;
        let mut bad = false;
        for_each_read(&code[pc], &mut |r| {
            if w.contains(r) && !live_in.contains(r) {
                bad = true;
            }
        });
        if bad {
            return None;
        }
    }
    Some(())
}

// ---------------------------------------------------------------------
// Instruction effect tables
// ---------------------------------------------------------------------

/// Whether control can fall through to the next instruction.
fn falls_through(instr: &Instr) -> bool {
    !matches!(instr, Instr::Jump { .. } | Instr::ForStep { .. })
}

/// Call `f` for every jump target of the instruction.
fn for_each_target(instr: &Instr, f: &mut dyn FnMut(u32)) {
    match *instr {
        Instr::Jump { target }
        | Instr::JumpIfFalse { target, .. }
        | Instr::JumpIfTrue { target, .. }
        | Instr::JumpIfMissing { target, .. }
        | Instr::JumpIfNotMissing { target, .. }
        | Instr::CmpBranch { target, .. }
        | Instr::CmpBranchImm { target, .. }
        | Instr::ICmpBranch { target, .. }
        | Instr::ICmpBranchImm { target, .. }
        | Instr::FCmpBranch { target, .. }
        | Instr::FCmpBranchImm { target, .. } => f(target),
        Instr::WhileTest { end, .. }
        | Instr::ForTest { end, .. }
        | Instr::IForTest { end, .. }
        | Instr::WhileCmp { end, .. }
        | Instr::WhileCmpImm { end, .. }
        | Instr::IWhileCmp { end, .. }
        | Instr::IWhileCmpImm { end, .. }
        | Instr::FWhileCmp { end, .. } => f(end),
        Instr::ForStep { test, .. } => f(test),
        _ => {}
    }
}

fn vbase_read(base: &VBase, f: &mut dyn FnMut(Reg)) {
    if let VBase::Scaled { reg, .. } = *base {
        f(reg);
    }
}

/// Call `f` for every register the instruction reads.
fn for_each_read(instr: &Instr, f: &mut dyn FnMut(Reg)) {
    match instr {
        Instr::BumpStmt
        | Instr::Const { .. }
        | Instr::ConstI { .. }
        | Instr::ConstF { .. }
        | Instr::BufLen { .. }
        | Instr::ILen { .. }
        | Instr::Jump { .. }
        | Instr::FiberEnd { .. }
        | Instr::Nop => {}
        Instr::Mov { src, .. } | Instr::IMov { src, .. } | Instr::FMov { src, .. } => f(*src),
        Instr::Load { idx, .. }
        | Instr::LoadI64 { idx, .. }
        | Instr::LoadF64 { idx, .. }
        | Instr::LoadU8 { idx, .. } => f(*idx),
        Instr::CoerceInt { reg } => f(*reg),
        Instr::Store { idx, val, .. }
        | Instr::StoreF64 { idx, val, .. }
        | Instr::StoreU8 { idx, val, .. } => {
            f(*idx);
            f(*val);
        }
        Instr::Unary { src, .. } | Instr::FRound { src, .. } => f(*src),
        Instr::Binary { lhs, rhs, .. }
        | Instr::IArith { lhs, rhs, .. }
        | Instr::FArith { lhs, rhs, .. }
        | Instr::CmpBranch { lhs, rhs, .. }
        | Instr::ICmpBranch { lhs, rhs, .. }
        | Instr::FCmpBranch { lhs, rhs, .. }
        | Instr::WhileCmp { lhs, rhs, .. }
        | Instr::IWhileCmp { lhs, rhs, .. }
        | Instr::FWhileCmp { lhs, rhs, .. } => {
            f(*lhs);
            f(*rhs);
        }
        Instr::JumpIfFalse { src, .. }
        | Instr::JumpIfTrue { src, .. }
        | Instr::JumpIfMissing { src, .. }
        | Instr::JumpIfNotMissing { src, .. } => f(*src),
        Instr::WhileTest { cond, .. } => f(*cond),
        Instr::ForTest { counter, hi, .. } | Instr::IForTest { counter, hi, .. } => {
            f(*counter);
            f(*hi);
        }
        Instr::ForStep { counter, .. } => f(*counter),
        Instr::Append { val, .. } | Instr::IAppend { val, .. } | Instr::FAppend { val, .. } => {
            f(*val)
        }
        Instr::Seek { lo, hi, key, .. } | Instr::ISeek { lo, hi, key, .. } => {
            f(*lo);
            f(*hi);
            f(*key);
        }
        Instr::BinaryImm { lhs, .. }
        | Instr::IArithImm { lhs, .. }
        | Instr::FArithImm { lhs, .. }
        | Instr::CmpBranchImm { lhs, .. }
        | Instr::ICmpBranchImm { lhs, .. }
        | Instr::FCmpBranchImm { lhs, .. }
        | Instr::WhileCmpImm { lhs, .. }
        | Instr::IWhileCmpImm { lhs, .. } => f(*lhs),
        Instr::LoadBinary { lhs, idx, .. } | Instr::FMulLoad { lhs, idx, .. } => {
            f(*lhs);
            f(*idx);
        }
        Instr::VFillStoreF64 { base, counter, hi, .. } => {
            vbase_read(base, f);
            f(*counter);
            f(*hi);
        }
        Instr::VMapF64 { dst_base, a_base, rhs, counter, hi, .. } => {
            vbase_read(dst_base, f);
            vbase_read(a_base, f);
            if let VRhs::Buf { base, .. } = rhs {
                vbase_read(base, f);
            }
            f(*counter);
            f(*hi);
        }
        Instr::VMulAddF64 { a_base, b_base, counter, hi, .. } => {
            vbase_read(a_base, f);
            vbase_read(b_base, f);
            f(*counter);
            f(*hi);
        }
        Instr::VReduceF64 { base, counter, hi, .. } => {
            vbase_read(base, f);
            f(*counter);
            f(*hi);
        }
        Instr::VAppendRangeF64 { base, counter, hi, .. } => {
            vbase_read(base, f);
            f(*counter);
            f(*hi);
        }
        Instr::VCmpSelectU8 { dst_base, src_base, counter, hi, .. } => {
            vbase_read(dst_base, f);
            vbase_read(src_base, f);
            f(*counter);
            f(*hi);
        }
    }
}

/// Call `f` for every register the instruction writes.
fn for_each_write(instr: &Instr, f: &mut dyn FnMut(Reg)) {
    match *instr {
        Instr::Const { dst, .. }
        | Instr::Mov { dst, .. }
        | Instr::BufLen { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::Unary { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::Seek { dst, .. }
        | Instr::BinaryImm { dst, .. }
        | Instr::LoadBinary { dst, .. }
        | Instr::ConstI { dst, .. }
        | Instr::ConstF { dst, .. }
        | Instr::IMov { dst, .. }
        | Instr::FMov { dst, .. }
        | Instr::ILen { dst, .. }
        | Instr::LoadI64 { dst, .. }
        | Instr::LoadF64 { dst, .. }
        | Instr::LoadU8 { dst, .. }
        | Instr::FMulLoad { dst, .. }
        | Instr::IArith { dst, .. }
        | Instr::FArith { dst, .. }
        | Instr::IArithImm { dst, .. }
        | Instr::FArithImm { dst, .. }
        | Instr::FRound { dst, .. }
        | Instr::ISeek { dst, .. } => f(dst),
        Instr::CoerceInt { reg } => f(reg),
        Instr::ForTest { var, .. } | Instr::IForTest { var, .. } => f(var),
        Instr::ForStep { counter, .. } => f(counter),
        Instr::VFillStoreF64 { counter, .. }
        | Instr::VMapF64 { counter, .. }
        | Instr::VMulAddF64 { counter, .. }
        | Instr::VReduceF64 { counter, .. }
        | Instr::VAppendRangeF64 { counter, .. }
        | Instr::VCmpSelectU8 { counter, .. } => f(counter),
        _ => {}
    }
}

/// Call `f` for every buffer the instruction writes (stores or appends).
fn for_each_written_buf(instr: &Instr, f: &mut dyn FnMut(BufId)) {
    match *instr {
        Instr::Store { buf, .. }
        | Instr::Append { buf, .. }
        | Instr::StoreF64 { buf, .. }
        | Instr::StoreU8 { buf, .. }
        | Instr::IAppend { buf, .. }
        | Instr::FAppend { buf, .. }
        | Instr::VFillStoreF64 { buf, .. } => f(buf),
        Instr::FiberEnd { pos, .. } => f(pos),
        Instr::VMapF64 { dst, .. } | Instr::VCmpSelectU8 { dst, .. } => f(dst),
        Instr::VMulAddF64 { acc, .. } | Instr::VReduceF64 { acc, .. } => f(acc),
        Instr::VAppendRangeF64 { idx_out, val_out, .. } => {
            f(idx_out);
            f(val_out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};
    use crate::expr::{BinOp, Expr};
    use crate::opt::{optimize_and_lower, OptLevel, ValidationLevel};
    use crate::stmt::Stmt;
    use crate::var::Names;
    use crate::vm::Vm;

    fn lower(code: &[Stmt], names: &mut Names, bufs: &BufferSet) -> crate::bytecode::Program {
        optimize_and_lower(code, names, bufs, OptLevel::Default, true, true, ValidationLevel::Full)
            .expect("pipeline validates")
            .program
    }

    fn sets_bit_equal(a: &BufferSet, b: &BufferSet) -> bool {
        a.len() == b.len()
            && a.iter().zip(b.iter()).all(|((_, _, x), (_, _, y))| match (x, y) {
                (Buffer::F64(p), Buffer::F64(q)) => {
                    p.len() == q.len()
                        && p.iter().zip(q.iter()).all(|(u, v)| u.to_bits() == v.to_bits())
                }
                _ => x == y,
            })
    }

    /// Serial and sharded runs of the same program over the same
    /// inputs must agree bit-for-bit on buffers and exactly on stats.
    fn assert_parallel_parity(program: &crate::bytecode::Program, bufs: &BufferSet, what: &str) {
        let mut serial_bufs = bufs.clone();
        let mut serial_vm = Vm::new(program);
        serial_vm.run(program, &mut serial_bufs).expect("serial runs");
        for threads in [2, 4, 16] {
            let mut par_bufs = bufs.clone();
            let mut par_vm = Vm::new(program);
            crate::par::run_sharded(&mut par_vm, program, &mut par_bufs, threads)
                .expect("sharded runs");
            assert_eq!(
                serial_vm.stats(),
                par_vm.stats(),
                "{what}: stats diverge at {threads} threads"
            );
            assert!(
                sets_bit_equal(&serial_bufs, &par_bufs),
                "{what}: buffers diverge at {threads} threads"
            );
        }
    }

    #[test]
    fn associative_int_reduction_is_accepted() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let acc = bufs.add("acc", Buffer::I64(vec![7].into()));
        let i = names.fresh("i");
        // for i in 0..=99 { acc[0] += i }  — an integer sum reduction.
        let code = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(99),
            body: vec![Stmt::Store {
                buf: acc,
                index: Expr::int(0),
                value: Expr::Var(i),
                reduce: Some(BinOp::Add),
            }],
        }];
        let program = lower(&code, &mut names, &bufs);
        let plan = program.shard_plan();
        assert_eq!(plan.regions.len(), 1, "the sum loop shards");
        assert!(plan.regions[0]
            .roles
            .iter()
            .any(|(b, r)| *b == acc && matches!(r, ShardRole::Reduction { op: BinOp::Add, .. })));
        assert_parallel_parity(&program, &bufs, "int sum reduction");
    }

    #[test]
    fn min_and_max_reductions_are_accepted() {
        for op in [BinOp::Min, BinOp::Max] {
            let mut names = Names::new();
            let mut bufs = BufferSet::new();
            let acc = bufs.add(
                "acc",
                Buffer::I64(vec![if op == BinOp::Min { i64::MAX } else { i64::MIN }].into()),
            );
            let i = names.fresh("i");
            let code = vec![Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(63),
                body: vec![Stmt::Store {
                    buf: acc,
                    index: Expr::int(0),
                    value: Expr::Binary {
                        op: BinOp::Mul,
                        lhs: Box::new(Expr::Var(i)),
                        rhs: Box::new(Expr::int(if op == BinOp::Min { -3 } else { 3 })),
                    },
                    reduce: Some(op),
                }],
            }];
            let program = lower(&code, &mut names, &bufs);
            assert_eq!(program.shard_plan().regions.len(), 1, "{op:?} loop shards");
            assert_parallel_parity(&program, &bufs, "int min/max reduction");
        }
    }

    #[test]
    fn float_reduction_is_rejected() {
        // Float addition is not associative bit-for-bit, so a f64 sum must
        // never shard.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![0.1; 64].into()));
        let acc = bufs.add("acc", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let code = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(63),
            body: vec![Stmt::Store {
                buf: acc,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let program = lower(&code, &mut names, &bufs);
        assert!(program.shard_plan().is_empty(), "float reductions must stay serial");
    }

    #[test]
    fn carried_dependence_is_rejected() {
        // for i in 1..=63 { y[i] = y[i-1] + x[i] } — a loop-carried prefix
        // sum; iteration i reads iteration i-1's write.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0; 64].into()));
        let y = bufs.add("y", Buffer::F64(vec![0.0; 64].into()));
        let i = names.fresh("i");
        let code = vec![Stmt::For {
            var: i,
            lo: Expr::int(1),
            hi: Expr::int(63),
            body: vec![Stmt::Store {
                buf: y,
                index: Expr::Var(i),
                value: Expr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::load(
                        y,
                        Expr::Binary {
                            op: BinOp::Sub,
                            lhs: Box::new(Expr::Var(i)),
                            rhs: Box::new(Expr::int(1)),
                        },
                    )),
                    rhs: Box::new(Expr::load(x, Expr::Var(i))),
                },
                reduce: None,
            }],
        }];
        let program = lower(&code, &mut names, &bufs);
        assert!(program.shard_plan().is_empty(), "carried dependences must stay serial");
    }

    #[test]
    fn partitioned_writes_shard_and_match_serial() {
        // for i in 0..=63 { y[i] = x[i] * 2.0 } — an elementwise map whose
        // writes are partitioned by the loop index.
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x =
            bufs.add("x", Buffer::F64((0..64).map(|k| k as f64 * 0.5).collect::<Vec<_>>().into()));
        let y = bufs.add("y", Buffer::F64(vec![0.0; 64].into()));
        let i = names.fresh("i");
        let code = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(63),
            body: vec![Stmt::Store {
                buf: y,
                index: Expr::Var(i),
                value: Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::load(x, Expr::Var(i))),
                    rhs: Box::new(Expr::Lit(crate::value::Value::Float(2.0))),
                },
                reduce: None,
            }],
        }];
        let program = lower(&code, &mut names, &bufs);
        let plan = program.shard_plan();
        assert_eq!(plan.regions.len(), 1, "the map loop shards");
        assert!(plan.regions[0]
            .roles
            .iter()
            .any(|(b, r)| *b == y && matches!(r, ShardRole::Partitioned { stride: 1 })));
        assert_parallel_parity(&program, &bufs, "partitioned map");
    }

    #[test]
    fn zero_trip_and_short_trip_loops_match_serial() {
        // Fewer rows than threads (including zero rows): the driver must
        // fall back or split into fewer shards, never duplicate or drop an
        // iteration.
        for hi in [-1i64, 0, 1, 2] {
            let mut names = Names::new();
            let mut bufs = BufferSet::new();
            let y = bufs.add("y", Buffer::F64(vec![0.0; 4].into()));
            let i = names.fresh("i");
            let code = vec![Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(hi),
                body: vec![Stmt::Store {
                    buf: y,
                    index: Expr::Var(i),
                    value: Expr::Var(i),
                    reduce: None,
                }],
            }];
            let program = lower(&code, &mut names, &bufs);
            assert_parallel_parity(&program, &bufs, &format!("trip count {}", hi + 1));
        }
    }
}
