//! Pretty-printing of the target IR as readable pseudo-Rust.
//!
//! The paper presents the *generated code* as its key artifact (Figure 1b
//! shows the dot-product loop nest Finch emits); this module renders our IR
//! the same way so examples and tests can display and assert on the shape of
//! the code the compiler produced.

use std::fmt::Write as _;

use crate::buffer::BufferSet;
use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::var::Names;

/// Pretty-printer configuration: the name tables used to render variables
/// and buffers.
#[derive(Debug, Clone, Copy)]
pub struct Printer<'a> {
    names: &'a Names,
    bufs: &'a BufferSet,
}

impl<'a> Printer<'a> {
    /// Create a printer over the given name tables.
    pub fn new(names: &'a Names, bufs: &'a BufferSet) -> Self {
        Printer { names, bufs }
    }

    /// Render a whole program.
    pub fn program(&self, stmts: &[Stmt]) -> String {
        let mut out = String::new();
        for s in stmts {
            self.stmt(s, 0, &mut out);
        }
        out
    }

    /// Render a single expression.
    pub fn expr(&self, e: &Expr) -> String {
        let mut s = String::new();
        self.write_expr(e, &mut s);
        s
    }

    fn indent(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("    ");
        }
    }

    fn stmt(&self, s: &Stmt, depth: usize, out: &mut String) {
        match s {
            Stmt::Comment(text) => {
                self.indent(depth, out);
                let _ = writeln!(out, "// {text}");
            }
            Stmt::Let { var, init } => {
                self.indent(depth, out);
                let _ = writeln!(out, "let mut {} = {};", self.names.name(*var), self.expr(init));
            }
            Stmt::Assign { var, value } => {
                self.indent(depth, out);
                let _ = writeln!(out, "{} = {};", self.names.name(*var), self.expr(value));
            }
            Stmt::Store { buf, index, value, reduce } => {
                self.indent(depth, out);
                let op = match reduce {
                    None => "=".to_string(),
                    Some(op) if op.is_call_style() => format!("{}=", op.symbol()),
                    Some(op) => format!("{}=", op.symbol()),
                };
                let _ = writeln!(
                    out,
                    "{}[{}] {} {};",
                    self.bufs.name(*buf),
                    self.expr(index),
                    op,
                    self.expr(value)
                );
            }
            Stmt::Append { buf, value } => {
                self.indent(depth, out);
                let _ = writeln!(out, "{}.push({});", self.bufs.name(*buf), self.expr(value));
            }
            Stmt::FiberEnd { pos, data } => {
                self.indent(depth, out);
                let _ = writeln!(
                    out,
                    "{}.push({}.len());",
                    self.bufs.name(*pos),
                    self.bufs.name(*data)
                );
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.indent(depth, out);
                let _ = writeln!(out, "if {} {{", self.expr(cond));
                for s in then_branch {
                    self.stmt(s, depth + 1, out);
                }
                if !else_branch.is_empty() {
                    self.indent(depth, out);
                    out.push_str("} else {\n");
                    for s in else_branch {
                        self.stmt(s, depth + 1, out);
                    }
                }
                self.indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::While { cond, body } => {
                self.indent(depth, out);
                let _ = writeln!(out, "while {} {{", self.expr(cond));
                for s in body {
                    self.stmt(s, depth + 1, out);
                }
                self.indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::For { var, lo, hi, body } => {
                self.indent(depth, out);
                let _ = writeln!(
                    out,
                    "for {} in {}..={} {{",
                    self.names.name(*var),
                    self.expr(lo),
                    self.expr(hi)
                );
                for s in body {
                    self.stmt(s, depth + 1, out);
                }
                self.indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::Block(body) => {
                for s in body {
                    self.stmt(s, depth, out);
                }
            }
        }
    }

    fn write_expr(&self, e: &Expr, out: &mut String) {
        match e {
            Expr::Lit(v) => {
                let _ = write!(out, "{v}");
            }
            Expr::Var(v) => out.push_str(self.names.name(*v)),
            Expr::BufLen(b) => {
                let _ = write!(out, "{}.len()", self.bufs.name(*b));
            }
            Expr::Load { buf, index } => {
                let _ = write!(out, "{}[", self.bufs.name(*buf));
                self.write_expr(index, out);
                out.push(']');
            }
            Expr::Unary { op, arg } => {
                if matches!(op, crate::expr::UnOp::Neg | crate::expr::UnOp::Not) {
                    let _ = write!(out, "{}", op.symbol());
                    out.push('(');
                    self.write_expr(arg, out);
                    out.push(')');
                } else {
                    let _ = write!(out, "{}(", op.symbol());
                    self.write_expr(arg, out);
                    out.push(')');
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                if op.is_call_style() {
                    let _ = write!(out, "{}(", op.symbol());
                    self.write_expr(lhs, out);
                    out.push_str(", ");
                    self.write_expr(rhs, out);
                    out.push(')');
                } else {
                    out.push('(');
                    self.write_expr(lhs, out);
                    let _ = write!(out, " {} ", op.symbol());
                    self.write_expr(rhs, out);
                    out.push(')');
                }
            }
            Expr::Select { cond, then, otherwise } => {
                out.push_str("if ");
                self.write_expr(cond, out);
                out.push_str(" { ");
                self.write_expr(then, out);
                out.push_str(" } else { ");
                self.write_expr(otherwise, out);
                out.push_str(" }");
            }
            Expr::Coalesce(args) => {
                out.push_str("coalesce(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.write_expr(a, out);
                }
                out.push(')');
            }
            Expr::Search { buf, lo, hi, key, on_abs } => {
                let f = if *on_abs { "search_abs" } else { "search" };
                let _ = write!(out, "{f}({}, ", self.bufs.name(*buf));
                self.write_expr(lo, out);
                out.push_str(", ");
                self.write_expr(hi, out);
                out.push_str(", ");
                self.write_expr(key, out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::expr::BinOp;

    #[test]
    fn renders_a_small_loop_nest() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![0.0; 4].into()));
        let out = bufs.add("C", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let text = Printer::new(&names, &bufs).program(&prog);
        assert!(text.contains("for i in 0..=3 {"));
        assert!(text.contains("C[0] += x[i];"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn renders_while_if_and_search() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("A_idx", Buffer::I64(vec![1, 2, 3].into()));
        let p = names.fresh("p");
        let prog = vec![
            Stmt::Let {
                var: p,
                init: Expr::Search {
                    buf: idx,
                    lo: Box::new(Expr::int(0)),
                    hi: Box::new(Expr::int(2)),
                    key: Box::new(Expr::int(2)),
                    on_abs: false,
                },
            },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(3)),
                body: vec![Stmt::If {
                    cond: Expr::eq(Expr::Var(p), Expr::int(1)),
                    then_branch: vec![Stmt::Comment("hit".into())],
                    else_branch: vec![Stmt::Assign {
                        var: p,
                        value: Expr::add(Expr::Var(p), Expr::int(1)),
                    }],
                }],
            },
        ];
        let text = Printer::new(&names, &bufs).program(&prog);
        assert!(text.contains("search(A_idx, 0, 2, 2)"));
        assert!(text.contains("while (p < 3) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("// hit"));
    }

    #[test]
    fn expression_rendering_covers_all_constructors() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let b = bufs.add("v", Buffer::F64(vec![].into()));
        let x = names.fresh("x");
        let p = Printer::new(&names, &bufs);
        assert_eq!(p.expr(&Expr::min(Expr::Var(x), Expr::int(3))), "min(x, 3)");
        assert_eq!(p.expr(&Expr::unary(crate::expr::UnOp::Sqrt, Expr::Var(x))), "sqrt(x)");
        assert_eq!(p.expr(&Expr::BufLen(b)), "v.len()");
        assert_eq!(
            p.expr(&Expr::Coalesce(vec![Expr::missing(), Expr::int(0)])),
            "coalesce(missing, 0)"
        );
        assert!(p.expr(&Expr::select(Expr::bool(true), Expr::int(1), Expr::int(2))).contains("if"));
    }
}
