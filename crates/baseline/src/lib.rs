//! # finch-baseline — reference kernels and synthetic workloads
//!
//! The paper's evaluation compares Finch against TACO (iterator-over-
//! nonzeros / two-finger merges) and OpenCV (dense vectorised kernels) on
//! matrices from Harwell-Boeing, graphs from SNAP, and several image
//! datasets.  None of those systems or datasets are vendored here; instead
//! this crate provides
//!
//! * [`kernels`] — straightforward native Rust implementations of every
//!   kernel in the evaluation (dense and two-finger-merge variants).  They
//!   play the role of the TACO/OpenCV comparison points *and* serve as
//!   correctness oracles for the compiler-generated code, and
//! * [`datagen`] — synthetic workload generators that reproduce the
//!   *structural* properties the paper's datasets are used for: clustered
//!   and banded scientific matrices, power-law graphs, stroke-like sparse
//!   images and noisy sketches.
//!
//! The substitutions are documented in `DESIGN.md` at the repository root.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datagen;
pub mod kernels;
