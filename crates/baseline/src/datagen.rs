//! Synthetic workload generators.
//!
//! Each generator reproduces the *structural* property of the paper's
//! datasets that the corresponding experiment depends on: clustered bands
//! and blocks for Harwell-Boeing matrices, skewed degree distributions for
//! SNAP graphs, white backgrounds with clustered strokes for Omniglot, and
//! dense noisy drawings for the human-sketches dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG so that experiments are reproducible run to run.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A dense vector with randomly placed nonzeros at the given fraction
/// (Figure 7a's `x` with "10% fraction nonzero").
pub fn random_sparse_vector(n: usize, fraction: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| if r.gen::<f64>() < fraction { r.gen_range(0.5..10.0) } else { 0.0 }).collect()
}

/// A dense vector with exactly `count` randomly placed nonzeros
/// (Figure 7b's `x` with "count of 10 nonzeros").
pub fn counted_sparse_vector(n: usize, count: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut out = vec![0.0; n];
    let mut placed = 0usize;
    while placed < count.min(n) {
        let i = r.gen_range(0..n);
        if out[i] == 0.0 {
            out[i] = r.gen_range(0.5..10.0);
            placed += 1;
        }
    }
    out
}

/// A "scientific computing" matrix in the spirit of the Harwell-Boeing
/// collection: a banded diagonal region, a few dense rectangular blocks,
/// and some random scatter.  Returned as a dense row-major array.
pub fn scientific_matrix(
    n: usize,
    band: usize,
    nblocks: usize,
    scatter: f64,
    seed: u64,
) -> Vec<f64> {
    let mut r = rng(seed);
    let mut a = vec![0.0; n * n];
    // Band around the diagonal.
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        for j in lo..=hi {
            a[i * n + j] = r.gen_range(0.1..10.0);
        }
    }
    // Dense blocks.
    for _ in 0..nblocks {
        let size = r.gen_range(2..=(n / 8).max(2));
        let top = r.gen_range(0..n.saturating_sub(size).max(1));
        let left = r.gen_range(0..n.saturating_sub(size).max(1));
        for i in top..(top + size).min(n) {
            for j in left..(left + size).min(n) {
                a[i * n + j] = r.gen_range(0.1..10.0);
            }
        }
    }
    // Random scatter.
    let extra = ((n * n) as f64 * scatter) as usize;
    for _ in 0..extra {
        let i = r.gen_range(0..n);
        let j = r.gen_range(0..n);
        a[i * n + j] = r.gen_range(0.1..10.0);
    }
    a
}

/// A symmetric 0/1 adjacency matrix with a power-law degree distribution
/// built by preferential attachment (the SNAP stand-in for triangle
/// counting).  Returned as a dense row-major array.
pub fn power_law_graph(n: usize, edges_per_node: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut adj = vec![0.0; n * n];
    let mut targets: Vec<usize> = Vec::new();
    for v in 0..n {
        let m = edges_per_node.min(v.max(1));
        for _ in 0..m {
            // Preferential attachment: pick an endpoint weighted by its
            // current degree (the repeated-targets trick), falling back to a
            // uniform choice for the first nodes.
            let u = if targets.is_empty() || r.gen_bool(0.2) {
                r.gen_range(0..(v.max(1)))
            } else {
                targets[r.gen_range(0..targets.len())]
            };
            if u != v {
                adj[v * n + u] = 1.0;
                adj[u * n + v] = 1.0;
                targets.push(u);
                targets.push(v);
            }
        }
    }
    adj
}

/// A random sparse grid for the convolution experiment: each cell is
/// nonzero with probability `density`.
pub fn sparse_grid(nrows: usize, ncols: usize, density: f64, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..nrows * ncols)
        .map(|_| if r.gen::<f64>() < density { r.gen_range(0.5..2.0) } else { 0.0 })
        .collect()
}

/// An Omniglot-like image: a white (zero) background with a handful of
/// dark strokes drawn by random walks, producing clustered nonzeros and
/// long zero runs.
pub fn stroke_image(size: usize, strokes: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut img = vec![0.0; size * size];
    for _ in 0..strokes {
        let mut x = r.gen_range(0..size) as isize;
        let mut y = r.gen_range(0..size) as isize;
        let len = r.gen_range(size / 2..size * 2);
        for _ in 0..len {
            for dx in -1isize..=1 {
                for dy in -1isize..=1 {
                    let (px, py) = (x + dx, y + dy);
                    if px >= 0 && px < size as isize && py >= 0 && py < size as isize {
                        img[(px as usize) * size + py as usize] =
                            r.gen_range(100.0..255.0_f64).round();
                    }
                }
            }
            x = (x + r.gen_range(-1..=1)).clamp(0, size as isize - 1);
            y = (y + r.gen_range(-1..=1)).clamp(0, size as isize - 1);
        }
    }
    img
}

/// A human-sketches-like image: denser strokes over a noisy background, so
/// runs are shorter and sparsity lower than [`stroke_image`].
pub fn sketch_image(size: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut img = stroke_image(size, 6, seed ^ 0x5EED);
    for v in img.iter_mut() {
        if *v == 0.0 && r.gen_bool(0.05) {
            *v = r.gen_range(1.0..40.0_f64).round();
        }
    }
    img
}

/// An MNIST-like image: a centred blob of nonzero pixels on a zero
/// background.
pub fn blob_image(size: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    let mut img = vec![0.0; size * size];
    let cx = size as f64 / 2.0 + r.gen_range(-2.0..2.0);
    let cy = size as f64 / 2.0 + r.gen_range(-2.0..2.0);
    let radius = size as f64 * r.gen_range(0.2..0.35);
    for i in 0..size {
        for j in 0..size {
            let d = ((i as f64 - cx).powi(2) + (j as f64 - cy).powi(2)).sqrt();
            if d < radius {
                img[i * size + j] = ((1.0 - d / radius) * 255.0).round();
            }
        }
    }
    img
}

/// Stack `count` linearised images (rows) generated by `gen` into an
/// `count × (size*size)` dense matrix.
pub fn image_batch(
    count: usize,
    size: usize,
    seed: u64,
    gen: impl Fn(usize, u64) -> Vec<f64>,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(count * size * size);
    for k in 0..count {
        out.extend(gen(size, seed.wrapping_add(k as u64)));
    }
    out
}

/// The density (fraction of nonzeros) of a dense array.
pub fn density(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|&&v| v != 0.0).count() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vectors_have_requested_density() {
        let v = random_sparse_vector(10_000, 0.1, 1);
        let d = density(&v);
        assert!(d > 0.07 && d < 0.13, "density {d}");
        let v = counted_sparse_vector(1000, 10, 2);
        assert_eq!(v.iter().filter(|&&x| x != 0.0).count(), 10);
    }

    #[test]
    fn scientific_matrices_are_clustered() {
        let n = 64;
        let a = scientific_matrix(n, 2, 3, 0.005, 3);
        let d = density(&a);
        assert!(d > 0.03 && d < 0.6, "density {d}");
        // The diagonal band must be fully populated.
        for i in 0..n {
            assert_ne!(a[i * n + i], 0.0);
        }
    }

    #[test]
    fn power_law_graph_is_symmetric_and_skewed() {
        let n = 200;
        let adj = power_law_graph(n, 4, 7);
        let mut degrees = vec![0usize; n];
        for i in 0..n {
            for j in 0..n {
                assert_eq!(adj[i * n + j], adj[j * n + i]);
                assert_eq!(adj[i * n + i], 0.0);
                if adj[i * n + j] != 0.0 {
                    degrees[i] += 1;
                }
            }
        }
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        assert!(max as f64 > 2.5 * mean, "max degree {max}, mean {mean}");
    }

    #[test]
    fn images_have_the_expected_structure() {
        let omni = stroke_image(32, 2, 11);
        assert!(density(&omni) < 0.6, "stroke images are mostly background");
        let sketch = sketch_image(32, 11);
        assert!(density(&sketch) > density(&omni), "sketches are denser than strokes");
        let blob = blob_image(28, 5);
        assert!(density(&blob) > 0.05 && density(&blob) < 0.6);
        let batch = image_batch(3, 16, 1, blob_image);
        assert_eq!(batch.len(), 3 * 16 * 16);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(sparse_grid(16, 16, 0.2, 9), sparse_grid(16, 16, 0.2, 9));
        assert_ne!(sparse_grid(16, 16, 0.2, 9), sparse_grid(16, 16, 0.2, 10));
    }
}
