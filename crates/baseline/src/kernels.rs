//! Native reference kernels.
//!
//! These are the "hand-written" implementations a performance engineer
//! would produce for each kernel: dense loops (the OpenCV stand-in) and
//! iterator-over-nonzeros two-finger merges (the TACO stand-in).  They are
//! used both as baselines in the benchmark harness and as oracles in the
//! test suite.

/// A sparse vector as parallel coordinate/value arrays (sorted by
/// coordinate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    /// Sorted coordinates of the nonzeros.
    pub idx: Vec<usize>,
    /// The corresponding values.
    pub val: Vec<f64>,
    /// The dimension.
    pub len: usize,
}

impl SparseVec {
    /// Compress a dense vector.
    pub fn from_dense(data: &[f64]) -> Self {
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            if v != 0.0 {
                idx.push(i);
                val.push(v);
            }
        }
        SparseVec { idx, val, len: data.len() }
    }

    /// Materialise as a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        for (&i, &v) in self.idx.iter().zip(&self.val) {
            out[i] = v;
        }
        out
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }
}

/// A CSR matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row boundaries, length `nrows + 1`.
    pub pos: Vec<usize>,
    /// Column coordinates of the nonzeros.
    pub idx: Vec<usize>,
    /// The nonzero values.
    pub val: Vec<f64>,
}

impl CsrMatrix {
    /// Compress a dense row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn from_dense(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        let mut pos = vec![0usize];
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v != 0.0 {
                    idx.push(c);
                    val.push(v);
                }
            }
            pos.push(idx.len());
        }
        CsrMatrix { nrows, ncols, pos, idx, val }
    }

    /// Materialise as a dense row-major matrix.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            for q in self.pos[r]..self.pos[r + 1] {
                out[r * self.ncols + self.idx[q]] = self.val[q];
            }
        }
        out
    }

    /// The transposed matrix (also CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let dense = self.to_dense();
        let mut out = vec![0.0; self.nrows * self.ncols];
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                out[c * self.nrows + r] = dense[r * self.ncols + c];
            }
        }
        CsrMatrix::from_dense(self.ncols, self.nrows, &out)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// The column coordinates of row `r`.
    pub fn row_idx(&self, r: usize) -> &[usize] {
        &self.idx[self.pos[r]..self.pos[r + 1]]
    }

    /// The values of row `r`.
    pub fn row_val(&self, r: usize) -> &[f64] {
        &self.val[self.pos[r]..self.pos[r + 1]]
    }
}

// ---------------------------------------------------------------------------
// Dot products (Figure 1)
// ---------------------------------------------------------------------------

/// Dense dot product.
pub fn dot_dense(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// TACO-style two-finger merge dot product over two sparse vectors.
/// Also returns the number of inner-loop iterations performed, the
/// machine-independent work measure used in the evaluation.
pub fn dot_two_finger(a: &SparseVec, b: &SparseVec) -> (f64, u64) {
    let mut acc = 0.0;
    let mut work = 0u64;
    let (mut pa, mut pb) = (0usize, 0usize);
    while pa < a.idx.len() && pb < b.idx.len() {
        work += 1;
        let (ia, ib) = (a.idx[pa], b.idx[pb]);
        if ia == ib {
            acc += a.val[pa] * b.val[pb];
            pa += 1;
            pb += 1;
        } else if ia < ib {
            pa += 1;
        } else {
            pb += 1;
        }
    }
    (acc, work)
}

/// Galloping (mutual lookahead) intersection dot product.
pub fn dot_gallop(a: &SparseVec, b: &SparseVec) -> (f64, u64) {
    let mut acc = 0.0;
    let mut work = 0u64;
    let (mut pa, mut pb) = (0usize, 0usize);
    while pa < a.idx.len() && pb < b.idx.len() {
        work += 1;
        let (ia, ib) = (a.idx[pa], b.idx[pb]);
        if ia == ib {
            acc += a.val[pa] * b.val[pb];
            pa += 1;
            pb += 1;
        } else if ia < ib {
            pa += lower_bound(&a.idx[pa..], ib);
        } else {
            pb += lower_bound(&b.idx[pb..], ia);
        }
    }
    (acc, work)
}

fn lower_bound(slice: &[usize], key: usize) -> usize {
    match slice.binary_search(&key) {
        Ok(k) => k,
        Err(k) => k,
    }
}

// ---------------------------------------------------------------------------
// SpMSpV (Figure 7)
// ---------------------------------------------------------------------------

/// Sparse-matrix sparse-vector multiply, merging `x` against every row of
/// `a` with a two-finger merge (the TACO comparison point of Figure 7).
pub fn spmspv_two_finger(a: &CsrMatrix, x: &SparseVec) -> (Vec<f64>, u64) {
    let mut y = vec![0.0; a.nrows];
    let mut work = 0u64;
    for (r, yr) in y.iter_mut().enumerate() {
        let (idx, val) = (a.row_idx(r), a.row_val(r));
        let (mut p, mut q) = (0usize, 0usize);
        while p < idx.len() && q < x.idx.len() {
            work += 1;
            if idx[p] == x.idx[q] {
                *yr += val[p] * x.val[q];
                p += 1;
                q += 1;
            } else if idx[p] < x.idx[q] {
                p += 1;
            } else {
                q += 1;
            }
        }
    }
    (y, work)
}

/// SpMSpV with a galloping merge in every row.
pub fn spmspv_gallop(a: &CsrMatrix, x: &SparseVec) -> (Vec<f64>, u64) {
    let mut y = vec![0.0; a.nrows];
    let mut work = 0u64;
    for (r, yr) in y.iter_mut().enumerate() {
        let (idx, val) = (a.row_idx(r), a.row_val(r));
        let (mut p, mut q) = (0usize, 0usize);
        while p < idx.len() && q < x.idx.len() {
            work += 1;
            if idx[p] == x.idx[q] {
                *yr += val[p] * x.val[q];
                p += 1;
                q += 1;
            } else if idx[p] < x.idx[q] {
                p += lower_bound(&idx[p..], x.idx[q]);
            } else {
                q += lower_bound(&x.idx[q..], idx[p]);
            }
        }
    }
    (y, work)
}

/// Dense reference SpMV (oracle).
pub fn spmv_dense(nrows: usize, ncols: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
    (0..nrows).map(|r| (0..ncols).map(|c| a[r * ncols + c] * x[c]).sum()).collect()
}

// ---------------------------------------------------------------------------
// Triangle counting (Figure 8)
// ---------------------------------------------------------------------------

/// Triangle counting via two-finger row intersections:
/// `C = Σ_{i,j,k} A[i,j] A[j,k] A[k,i]` over a 0/1 adjacency matrix
/// (counts each triangle once per ordered rotation, as the paper's kernel
/// does).
pub fn triangles_two_finger(a: &CsrMatrix) -> (f64, u64) {
    triangles_impl(a, false)
}

/// Triangle counting with galloping intersections.
pub fn triangles_gallop(a: &CsrMatrix) -> (f64, u64) {
    triangles_impl(a, true)
}

fn triangles_impl(a: &CsrMatrix, gallop: bool) -> (f64, u64) {
    let at = a.transpose();
    let mut count = 0.0;
    let mut work = 0u64;
    for i in 0..a.nrows {
        for &j in a.row_idx(i) {
            // Intersect row j of A with column i of A (= row i of Aᵀ).
            let bj = a.row_idx(j);
            let ci = at.row_idx(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < bj.len() && q < ci.len() {
                work += 1;
                if bj[p] == ci[q] {
                    count += 1.0;
                    p += 1;
                    q += 1;
                } else if bj[p] < ci[q] {
                    if gallop {
                        p += lower_bound(&bj[p..], ci[q]);
                    } else {
                        p += 1;
                    }
                } else if gallop {
                    q += lower_bound(&ci[q..], bj[p]);
                } else {
                    q += 1;
                }
            }
        }
    }
    (count, work)
}

// ---------------------------------------------------------------------------
// Convolution (Figure 9)
// ---------------------------------------------------------------------------

/// Dense 2-D convolution with zero padding, masked to positions where the
/// input is nonzero (the paper's Figure 9 kernel).
pub fn conv2d_dense_masked(
    nrows: usize,
    ncols: usize,
    a: &[f64],
    ksize: usize,
    filter: &[f64],
) -> Vec<f64> {
    let half = (ksize / 2) as isize;
    let mut out = vec![0.0; nrows * ncols];
    for i in 0..nrows as isize {
        for k in 0..ncols as isize {
            if a[(i as usize) * ncols + k as usize] == 0.0 {
                continue;
            }
            let mut acc = 0.0;
            for dj in 0..ksize as isize {
                for dl in 0..ksize as isize {
                    let (r, c) = (i + dj - half, k + dl - half);
                    if r >= 0 && r < nrows as isize && c >= 0 && c < ncols as isize {
                        acc += a[(r as usize) * ncols + c as usize]
                            * filter[(dj as usize) * ksize + dl as usize];
                    }
                }
            }
            out[(i as usize) * ncols + k as usize] = acc;
        }
    }
    out
}

/// Dense 2-D convolution with zero padding over every output position
/// (the OpenCV stand-in: no sparsity exploited at all).
pub fn conv2d_dense_full(
    nrows: usize,
    ncols: usize,
    a: &[f64],
    ksize: usize,
    filter: &[f64],
) -> Vec<f64> {
    let half = (ksize / 2) as isize;
    let mut out = vec![0.0; nrows * ncols];
    for i in 0..nrows as isize {
        for k in 0..ncols as isize {
            let mut acc = 0.0;
            for dj in 0..ksize as isize {
                for dl in 0..ksize as isize {
                    let (r, c) = (i + dj - half, k + dl - half);
                    if r >= 0 && r < nrows as isize && c >= 0 && c < ncols as isize {
                        acc += a[(r as usize) * ncols + c as usize]
                            * filter[(dj as usize) * ksize + dl as usize];
                    }
                }
            }
            out[(i as usize) * ncols + k as usize] = acc;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Alpha blending (Figure 10)
// ---------------------------------------------------------------------------

/// Dense alpha blending: `A = round(α·B + β·C)` clamped to `0..=255`.
pub fn alpha_blend_dense(b: &[f64], c: &[f64], alpha: f64, beta: f64) -> Vec<f64> {
    b.iter().zip(c).map(|(&x, &y)| (alpha * x + beta * y).round().clamp(0.0, 255.0)).collect()
}

/// Run-length alpha blending: blends run-by-run over both images' runs
/// (the TACO-RLE comparison point).  Returns the blended image and the
/// number of runs processed.
pub fn alpha_blend_rle(b: &[f64], c: &[f64], alpha: f64, beta: f64) -> (Vec<f64>, u64) {
    let n = b.len();
    let mut out = vec![0.0; n];
    let mut work = 0u64;
    let mut i = 0usize;
    while i < n {
        // The extent of the current run in both images.
        let bv = b[i];
        let cv = c[i];
        let mut j = i;
        while j + 1 < n && b[j + 1] == bv && c[j + 1] == cv {
            j += 1;
        }
        let blended = (alpha * bv + beta * cv).round().clamp(0.0, 255.0);
        out[i..=j].iter_mut().for_each(|o| *o = blended);
        work += 1;
        i = j + 1;
    }
    (out, work)
}

// ---------------------------------------------------------------------------
// All-pairs image similarity (Figure 11)
// ---------------------------------------------------------------------------

/// Pairwise Euclidean distances between the rows of an `n × m` matrix of
/// linearised images: `O[k,l] = sqrt(R[k] + R[l] - 2·⟨A[k,:], A[l,:]⟩)`.
pub fn all_pairs_similarity_dense(n: usize, m: usize, a: &[f64]) -> Vec<f64> {
    let r: Vec<f64> = (0..n).map(|k| (0..m).map(|j| a[k * m + j] * a[k * m + j]).sum()).collect();
    let mut out = vec![0.0; n * n];
    for k in 0..n {
        for l in 0..n {
            let mut dot = 0.0;
            for j in 0..m {
                dot += a[k * m + j] * a[l * m + j];
            }
            out[k * n + l] = (r[k] + r[l] - 2.0 * dot).max(0.0).sqrt();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sparse() -> (Vec<f64>, Vec<f64>) {
        (
            vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0],
        )
    }

    #[test]
    fn sparse_vec_roundtrip() {
        let (a, _) = sample_sparse();
        let s = SparseVec::from_dense(&a);
        assert_eq!(s.to_dense(), a);
        assert_eq!(s.nnz(), 4);
    }

    #[test]
    fn csr_roundtrip_and_transpose() {
        let data = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0];
        let m = CsrMatrix::from_dense(2, 3, &data);
        assert_eq!(m.to_dense(), data);
        let t = m.transpose();
        assert_eq!(t.nrows, 3);
        assert_eq!(t.to_dense(), vec![1.0, 0.0, 0.0, 0.0, 2.0, 3.0]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn merge_dot_products_agree_with_dense() {
        let (a, b) = sample_sparse();
        let expect = dot_dense(&a, &b);
        let (two, _) = dot_two_finger(&SparseVec::from_dense(&a), &SparseVec::from_dense(&b));
        let (gal, _) = dot_gallop(&SparseVec::from_dense(&a), &SparseVec::from_dense(&b));
        assert!((two - expect).abs() < 1e-9);
        assert!((gal - expect).abs() < 1e-9);
    }

    #[test]
    fn galloping_does_less_work_on_skewed_inputs() {
        // One long list, one tiny list: galloping should touch far fewer
        // entries than the two-finger merge.
        let long: Vec<f64> = (0..10_000).map(|k| if k % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let mut short = vec![0.0; 10_000];
        short[9_000] = 2.0;
        let (v1, w1) =
            dot_two_finger(&SparseVec::from_dense(&long), &SparseVec::from_dense(&short));
        let (v2, w2) = dot_gallop(&SparseVec::from_dense(&long), &SparseVec::from_dense(&short));
        assert_eq!(v1, v2);
        assert!(w2 * 10 < w1, "gallop {w2} vs two-finger {w1}");
    }

    #[test]
    fn spmspv_variants_agree_with_dense() {
        let nrows = 6;
        let ncols = 11;
        let (row, xv) = sample_sparse();
        let dense: Vec<f64> =
            (0..nrows).flat_map(|r| row.iter().map(move |&v| v * (r as f64 + 1.0))).collect();
        let a = CsrMatrix::from_dense(nrows, ncols, &dense);
        let x = SparseVec::from_dense(&xv);
        let expect = spmv_dense(nrows, ncols, &dense, &xv);
        let (y1, _) = spmspv_two_finger(&a, &x);
        let (y2, _) = spmspv_gallop(&a, &x);
        for r in 0..nrows {
            assert!((y1[r] - expect[r]).abs() < 1e-9);
            assert!((y2[r] - expect[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn triangle_counting_matches_a_brute_force_count() {
        // A small graph: 5 nodes, triangles (0,1,2) and (1,2,3).
        let n = 5;
        let edges = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (3, 4)];
        let mut dense = vec![0.0; n * n];
        for &(u, v) in &edges {
            dense[u * n + v] = 1.0;
            dense[v * n + u] = 1.0;
        }
        let a = CsrMatrix::from_dense(n, n, &dense);
        let brute = {
            let mut c = 0.0;
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        c += dense[i * n + j] * dense[j * n + k] * dense[k * n + i];
                    }
                }
            }
            c
        };
        let (two, _) = triangles_two_finger(&a);
        let (gal, _) = triangles_gallop(&a);
        assert_eq!(two, brute);
        assert_eq!(gal, brute);
        // 2 undirected triangles = 12 ordered rotations.
        assert_eq!(two, 12.0);
    }

    #[test]
    fn masked_convolution_only_writes_on_nonzero_inputs() {
        let nrows = 8;
        let ncols = 8;
        let mut a = vec![0.0; nrows * ncols];
        a[3 * ncols + 4] = 2.0;
        a[5 * ncols + 1] = 1.0;
        let filter = vec![1.0; 9];
        let out = conv2d_dense_masked(nrows, ncols, &a, 3, &filter);
        assert!(out[3 * ncols + 4] > 0.0);
        assert_eq!(out[0], 0.0);
        let full = conv2d_dense_full(nrows, ncols, &a, 3, &filter);
        // The masked output agrees with the full convolution wherever the
        // mask admits a value.
        for p in 0..nrows * ncols {
            if a[p] != 0.0 {
                assert!((out[p] - full[p]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn alpha_blend_rle_matches_dense() {
        let b = vec![10.0, 10.0, 10.0, 40.0, 40.0, 200.0, 200.0, 200.0];
        let c = vec![0.0, 0.0, 0.0, 100.0, 100.0, 100.0, 100.0, 30.0];
        let expect = alpha_blend_dense(&b, &c, 0.6, 0.4);
        let (got, runs) = alpha_blend_rle(&b, &c, 0.6, 0.4);
        assert_eq!(got, expect);
        assert!(runs < b.len() as u64);
    }

    #[test]
    fn all_pairs_distances_are_symmetric_with_zero_diagonal() {
        let a = vec![
            1.0, 0.0, 2.0, //
            0.0, 3.0, 0.0, //
            1.0, 1.0, 1.0,
        ];
        let d = all_pairs_similarity_dense(3, 3, &a);
        for k in 0..3 {
            assert!(d[k * 3 + k].abs() < 1e-9);
            for l in 0..3 {
                assert!((d[k * 3 + l] - d[l * 3 + k]).abs() < 1e-9);
            }
        }
        // Spot check one distance.
        let expect =
            ((1.0f64 - 0.0).powi(2) + (0.0f64 - 3.0).powi(2) + (2.0f64 - 0.0).powi(2)).sqrt();
        assert!((d[1] - expect).abs() < 1e-9);
    }
}
