//! Sparse output assembly: the output side of an assignment is
//! format-polymorphic too.
//!
//! A sparse·sparse elementwise multiply with a dense output materialises
//! (and initialises) the whole dimension — O(n) stores.  Binding the output
//! as a sparse list instead assembles only the stored entries by appending
//! to `pos`/`idx`/`val` — O(nnz) stores — and the result finalizes into a
//! first-class `Tensor` that the next kernel can consume (kernel chaining).
//!
//! ```bash
//! cargo run --release --example sparse_output
//! ```

use looplets_repro::finch::build::*;
use looplets_repro::finch::{Kernel, LevelSpec, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096;
    let mut av = vec![0.0; n];
    let mut bv = vec![0.0; n];
    for k in (0..n).step_by(127) {
        av[k] = 1.0 + (k % 9) as f64;
    }
    for k in (0..n).step_by(254) {
        bv[k] = 0.5;
    }
    let a = Tensor::sparse_list_vector("A", &av);
    let b = Tensor::sparse_list_vector("B", &bv);

    // C[i] = A[i] * B[i], once per output format.
    let program = |out: &str| {
        let i = idx("i");
        forall(
            i.clone(),
            assign(access(out, [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
        )
    };

    let mut dense = Kernel::new();
    dense.bind_input(&a).bind_input(&b).bind_output("C", &[n], 0.0);
    let mut dense = dense.compile(&program("C"))?;
    let dense_stats = dense.run()?;

    let mut sparse = Kernel::new();
    sparse
        .bind_input(&a)
        .bind_input(&b)
        .bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
    let mut sparse = sparse.compile(&program("C"))?;
    let sparse_stats = sparse.run()?;

    println!("generated code for the sparse-list output:\n{}", sparse.code());

    let c = sparse.output_tensor("C")?;
    assert_eq!(c.to_dense(), dense.output("C")?, "formats must agree");
    println!("sparse output assembly: {} stored entries out of {n} coordinates", c.stored());
    println!(
        "stores: dense output {} vs sparse-list output {}",
        dense_stats.stores, sparse_stats.stores
    );

    // Kernel chaining: the assembled tensor is a first-class input.
    let mut chain = Kernel::new();
    chain.bind_input(&c).bind_output_scalar("S");
    let i = idx("i");
    let sum = forall(i.clone(), add_assign(scalar("S"), access("C", [i])));
    let mut chain = chain.compile(&sum)?;
    chain.run()?;
    let expect: f64 = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
    assert!((chain.output_scalar("S")? - expect).abs() < 1e-9);
    println!("chained reduction over the assembled output: S = {}", chain.output_scalar("S")?);
    Ok(())
}
