//! The resilient kernel service: compile once, serve forever.
//!
//! A long-lived [`KernelService`] caches compiled kernels by *structure*
//! (program text + input formats/sizes + output formats + opt
//! configuration).  Requests with fresh data but the same structure skip
//! compilation: the cached kernel's input buffers are overwritten in place
//! and its persistent VM re-runs without allocating.  The service survives
//! faults by design — panicking kernels are quarantined, recompiled, and
//! degraded down an execution ladder whose every tier returns bit-identical
//! results; deadlines and budgets surface as typed errors.
//!
//! ```bash
//! cargo run --release --example serve
//! ```

use std::time::Duration;

use looplets_repro::finch::build::*;
use looplets_repro::finch::{
    FaultKind, FaultPlan, FaultRule, InjectPoint, KernelService, Request, ServiceConfig, Tensor,
    Tier,
};

fn dot_request(a: &Tensor, b: &Tensor) -> Request {
    let i = idx("i");
    let program =
        forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
    Request::new(program).input(a).input(b).output_scalar("C")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let svc = KernelService::new(ServiceConfig {
        capacity: 16,
        deadline: Some(Duration::from_millis(100)),
        ..ServiceConfig::default()
    });

    // 1. First request compiles; structurally identical follow-ups hit the
    //    cache and only rebind data.
    let n = 512;
    let mk = |scale: f64| {
        let av: Vec<f64> =
            (0..n).map(|k| if k % 5 == 0 { scale * k as f64 } else { 0.0 }).collect();
        let bv: Vec<f64> = (0..n).map(|k| 1.0 / (1.0 + k as f64)).collect();
        (Tensor::sparse_list_vector("A", &av), Tensor::dense_vector("B", &bv))
    };
    let (a, b) = mk(1.0);
    let first = svc.submit(&dot_request(&a, &b))?;
    println!(
        "first request:  compiled (cache hit: {}), C = {:.4}",
        first.cache_hit,
        first.scalar.unwrap()
    );
    for scale in [2.0, 3.0] {
        let (a, b) = mk(scale);
        let resp = svc.submit(&dot_request(&a, &b))?;
        println!(
            "scale {scale}:        cache hit: {}, tier {}, C = {:.4}",
            resp.cache_hit,
            resp.tier.label(),
            resp.scalar.unwrap()
        );
    }

    // 2. Fault injection: two stacked panics force the fast tier AND its
    //    quarantine-recompile retry to fail, degrading the request one tier
    //    down the ladder — with a bit-identical result.
    let baseline = svc.submit(&dot_request(&a, &b))?.scalar.unwrap();
    // The service catches the injected panics; silence the default hook's
    // backtraces so the demo output stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    let mut plan = FaultPlan::new();
    let next_rid = svc.stats().requests; // requests so far == next request id
    for point in [InjectPoint::MidRun, InjectPoint::PreRun] {
        plan.push(FaultRule { request: next_rid, point, kind: FaultKind::Panic });
    }
    svc.install_faults(plan);
    let degraded = svc.submit(&dot_request(&a, &b))?;
    println!(
        "under 2 panics: served by tier {} (degraded: {}), bit-identical: {}",
        degraded.tier.label(),
        degraded.tier != Tier::Fast,
        degraded.scalar.unwrap().to_bits() == baseline.to_bits(),
    );
    assert_eq!(degraded.scalar.unwrap().to_bits(), baseline.to_bits());

    let stats = svc.stats();
    println!(
        "service stats:  {} requests, {} hits / {} misses, {} compiles, \
         {} panics caught, {} quarantined, served by tier {:?}",
        stats.requests,
        stats.hits,
        stats.misses,
        stats.compiles,
        stats.panics,
        stats.quarantined,
        stats.served_by_tier,
    );
    Ok(())
}
