//! The resilient kernel service: compile once, serve forever.
//!
//! A long-lived [`KernelService`] caches compiled kernels by *structure*
//! (program text + input formats/sizes + output formats + opt
//! configuration).  Requests with fresh data but the same structure skip
//! compilation: the cached kernel's input buffers are overwritten in place
//! and its persistent VM re-runs without allocating.  The service survives
//! faults by design — panicking kernels are quarantined, recompiled, and
//! degraded down an execution ladder whose every tier returns bit-identical
//! results; deadlines and budgets surface as typed errors.
//!
//! ```bash
//! cargo run --release --example serve
//! ```

use std::time::Duration;

use looplets_repro::finch::build::*;
use looplets_repro::finch::{
    FaultKind, FaultPlan, FaultRule, InjectPoint, KernelService, Request, ServiceConfig,
    ServiceError, ServiceState, Tensor, Tier,
};

fn dot_request(a: &Tensor, b: &Tensor) -> Request {
    let i = idx("i");
    let program =
        forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
    Request::new(program).input(a).input(b).output_scalar("C")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let svc = KernelService::new(ServiceConfig {
        capacity: 16,
        deadline: Some(Duration::from_millis(100)),
        ..ServiceConfig::default()
    });

    // 1. First request compiles; structurally identical follow-ups hit the
    //    cache and only rebind data.
    let n = 512;
    let mk = |scale: f64| {
        let av: Vec<f64> =
            (0..n).map(|k| if k % 5 == 0 { scale * k as f64 } else { 0.0 }).collect();
        let bv: Vec<f64> = (0..n).map(|k| 1.0 / (1.0 + k as f64)).collect();
        (Tensor::sparse_list_vector("A", &av), Tensor::dense_vector("B", &bv))
    };
    let (a, b) = mk(1.0);
    let first = svc.submit(&dot_request(&a, &b))?;
    println!(
        "first request:  compiled (cache hit: {}), C = {:.4}",
        first.cache_hit,
        first.scalar.unwrap()
    );
    for scale in [2.0, 3.0] {
        let (a, b) = mk(scale);
        let resp = svc.submit(&dot_request(&a, &b))?;
        println!(
            "scale {scale}:        cache hit: {}, tier {}, C = {:.4}",
            resp.cache_hit,
            resp.tier.label(),
            resp.scalar.unwrap()
        );
    }

    // 2. Fault injection: two stacked panics force the fast tier AND its
    //    quarantine-recompile retry to fail, degrading the request one tier
    //    down the ladder — with a bit-identical result.
    let baseline = svc.submit(&dot_request(&a, &b))?.scalar.unwrap();
    // The service catches the injected panics; silence the default hook's
    // backtraces so the demo output stays readable.
    std::panic::set_hook(Box::new(|_| {}));
    let mut plan = FaultPlan::new();
    let next_rid = svc.stats().requests; // requests so far == next request id
    for point in [InjectPoint::MidRun, InjectPoint::PreRun] {
        plan.push(FaultRule { request: next_rid, point, kind: FaultKind::Panic });
    }
    svc.install_faults(plan);
    let degraded = svc.submit(&dot_request(&a, &b))?;
    println!(
        "under 2 panics: served by tier {} (degraded: {}), bit-identical: {}",
        degraded.tier.label(),
        degraded.tier != Tier::Fast,
        degraded.scalar.unwrap().to_bits() == baseline.to_bits(),
    );
    assert_eq!(degraded.scalar.unwrap().to_bits(), baseline.to_bits());

    // 3. Batched submission: requests sharing a structure are grouped so a
    //    cold structure compiles once for the whole batch, then each request
    //    rebinds its own data.  Outcomes come back in submission order.
    let sq = |scale: f64| {
        let (a, _) = mk(scale);
        let i = idx("i");
        let program = forall(
            i.clone(),
            add_assign(scalar("S"), mul(access("A", [i.clone()]), access("A", [i]))),
        );
        Request::new(program).input(&a).output_scalar("S")
    };
    let batch = [sq(1.0), dot_request(&a, &b), sq(2.0), sq(3.0)];
    let before = svc.stats().compiles;
    let outcomes = svc.submit_batch(&batch);
    let ok = outcomes.iter().filter(|o| o.is_ok()).count();
    println!(
        "batch of {}:     {} ok in {} structural groups, {} new compile(s)",
        batch.len(),
        ok,
        svc.stats().batch_groups,
        svc.stats().compiles - before,
    );

    // 4. Health, drain, resume: `drain` stops admitting (new work gets a
    //    typed `ShuttingDown`), lets in-flight requests finish up to its
    //    deadline, and leaves the service `Stopped`; `resume` reopens it with
    //    the kernel cache intact.
    let h = svc.health();
    println!(
        "health:         {:?}, {} queued / {} in flight, {} cached kernels, \
         breakers {}c/{}o/{}h",
        h.state,
        h.queued,
        h.in_flight,
        h.cached,
        h.breakers_closed,
        h.breakers_open,
        h.breakers_half_open,
    );
    let report = svc.drain(Duration::from_millis(250));
    let refused = svc.submit(&dot_request(&a, &b));
    println!(
        "drained:        in {:?} (cancelled: {}), state {:?}, new work: {}",
        report.waited,
        report.cancelled,
        report.state,
        match refused {
            Err(ServiceError::ShuttingDown { state }) => format!("ShuttingDown({state:?})"),
            other => format!("{other:?}"),
        },
    );
    svc.resume();
    let back = svc.submit(&dot_request(&a, &b))?;
    assert_eq!(svc.health().state, ServiceState::Running);
    println!("resumed:        cache hit: {} (warm cache survives a drain)", back.cache_hit);

    let stats = svc.stats();
    println!(
        "service stats:  {} requests, {} hits / {} misses, {} compiles, \
         {} panics caught, {} quarantined, served by tier {:?}",
        stats.requests,
        stats.hits,
        stats.misses,
        stats.compiles,
        stats.panics,
        stats.quarantined,
        stats.served_by_tier,
    );
    Ok(())
}
