//! Sparse-input convolution and concatenation built from index modifiers
//! (`permit`, `offset`) — the paper's §8 and Figure 9.
//!
//! ```bash
//! cargo run --example convolution
//! ```

use looplets_repro::baseline::datagen;
use looplets_repro::baseline::kernels::conv2d_dense_masked;
use looplets_repro::finch::build::*;
use looplets_repro::finch::{CinExpr, Kernel, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- masked 2-D convolution over a sparse grid -------------------------
    let size = 64;
    let ksize = 3usize;
    let grid = datagen::sparse_grid(size, size, 0.05, 9);
    let filter: Vec<f64> = (0..ksize * ksize).map(|v| 1.0 + v as f64 * 0.1).collect();
    println!("grid {size}x{size}, density {:.3}", datagen::density(&grid));

    let a = Tensor::csr_matrix("A", size, size, &grid);
    let aw = Tensor::csr_matrix("Aw", size, size, &grid);
    let f = Tensor::dense_matrix("F", ksize, ksize, &filter);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&aw).bind_input(&f).bind_output("C", &[size, size], 0.0);

    let (i, k, j, l) = (idx("i"), idx("k"), idx("j"), idx("l"));
    let half = (ksize / 2) as i64;
    let row_index = j.walk().offset(sub(lit_int(half), CinExpr::Index(i.clone()))).permit();
    let col_index = l.walk().offset(sub(lit_int(half), CinExpr::Index(k.clone()))).permit();
    let program = forall(
        i.clone(),
        forall(
            k.clone(),
            forall_in(
                j.clone(),
                lit_int(0),
                lit_int(ksize as i64 - 1),
                forall_in(
                    l.clone(),
                    lit_int(0),
                    lit_int(ksize as i64 - 1),
                    add_assign(
                        access("C", [i.clone(), k.clone()]),
                        mul3(
                            nonzero_mask(access("A", [i.clone(), k.clone()])),
                            coalesce(vec![access("Aw", [row_index, col_index]).into(), lit(0.0)]),
                            access("F", [j, l]),
                        ),
                    ),
                ),
            ),
        ),
    );
    println!("\nconvolution kernel:\n  {program}\n");
    let mut compiled = kernel.compile(&program)?;
    let stats = compiled.run()?;
    let got = compiled.output("C").unwrap();
    let expect = conv2d_dense_masked(size, size, &grid, ksize, &filter);
    let max_err = got.iter().zip(&expect).map(|(g, e)| (g - e).abs()).fold(0.0f64, f64::max);
    println!(
        "masked sparse convolution: total work {}, max |err| vs oracle {max_err:.2e}",
        stats.total_work()
    );

    // --- concatenation ------------------------------------------------------
    let a1 = Tensor::sparse_list_vector("P", &[1.0, 0.0, 2.0, 0.0]);
    let a2 = Tensor::sparse_list_vector("Q", &[0.0, 7.0]);
    let total = 6usize;
    let mut kernel = Kernel::new();
    kernel.bind_input(&a1).bind_input(&a2).bind_output("R", &[total], 0.0);
    let i = idx("i");
    let concat = forall_in(
        i.clone(),
        lit_int(0),
        lit_int(total as i64 - 1),
        assign(
            access("R", [i.clone()]),
            coalesce(vec![
                access("P", [i.walk().permit()]).into(),
                access("Q", [i.walk().offset(lit_int(4)).permit()]).into(),
                lit(0.0),
            ]),
        ),
    );
    let mut compiled = kernel.compile(&concat)?;
    compiled.run()?;
    println!("\nconcatenation R = [P; Q] = {:?}", compiled.output("R").unwrap());
    Ok(())
}
