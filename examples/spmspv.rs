//! Sparse-matrix sparse-vector multiplication with different coiteration
//! strategies (the paper's Figure 7 experiment, in miniature).
//!
//! ```bash
//! cargo run --example spmspv
//! ```

use looplets_repro::baseline::datagen;
use looplets_repro::baseline::kernels::{spmspv_two_finger, CsrMatrix, SparseVec};
use looplets_repro::finch::build::*;
use looplets_repro::finch::{CompiledKernel, IndexVar, Kernel, Protocol, Tensor};

fn spmspv(a: &Tensor, x: &Tensor, pa: Protocol, px: Protocol) -> CompiledKernel {
    let nrows = a.shape()[0];
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(x).bind_output("y", &[nrows], 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let with = |p: Protocol, v: &IndexVar| match p {
        Protocol::Gallop => v.gallop(),
        Protocol::Walk => v.walk(),
        Protocol::Locate => v.locate(),
        Protocol::Default => v.clone().into(),
    };
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            add_assign(
                access("y", [i.clone()]),
                mul(access(a.name(), [i.into(), with(pa, &j)]), access(x.name(), [with(px, &j)])),
            ),
        ),
    );
    kernel.compile(&program).expect("spmspv compiles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200;
    let dense_a = datagen::scientific_matrix(n, 2, 4, 0.002, 1);
    let xv = datagen::counted_sparse_vector(n, 10, 2);
    println!("matrix: {n}x{n}, density {:.3}", datagen::density(&dense_a));
    println!("vector: {} nonzeros out of {n}\n", xv.iter().filter(|&&v| v != 0.0).count());

    let x = Tensor::sparse_list_vector("x", &xv);
    let strategies: Vec<(&str, Tensor, Protocol, Protocol)> = vec![
        (
            "follower (walk/walk)",
            Tensor::csr_matrix("A", n, n, &dense_a),
            Protocol::Walk,
            Protocol::Walk,
        ),
        (
            "leader (gallop/gallop)",
            Tensor::csr_matrix("A", n, n, &dense_a),
            Protocol::Gallop,
            Protocol::Gallop,
        ),
        (
            "VBL (clustered blocks)",
            Tensor::vbl_matrix("A", n, n, &dense_a),
            Protocol::Walk,
            Protocol::Walk,
        ),
    ];

    // The TACO stand-in: a native two-finger merge.
    let csr = CsrMatrix::from_dense(n, n, &dense_a);
    let (reference, merge_work) = spmspv_two_finger(&csr, &SparseVec::from_dense(&xv));
    println!("{:28} {:>14} {:>12}", "strategy", "total work", "max |err|");
    println!("{:28} {:>14} {:>12}", "two-finger merge (native)", merge_work, "-");

    for (name, a, pa, px) in strategies {
        let mut k = spmspv(&a, &x, pa, px);
        let stats = k.run()?;
        let y = k.output("y").unwrap();
        let err = y.iter().zip(&reference).map(|(g, e)| (g - e).abs()).fold(0.0f64, f64::max);
        println!("{:28} {:>14} {:>12.2e}", name, stats.total_work(), err);
    }
    Ok(())
}
