//! Alpha blending over structured image formats (the paper's Figure 10) and
//! all-pairs image similarity (Figure 11).
//!
//! ```bash
//! cargo run --example image_blend
//! ```

use looplets_repro::baseline::datagen;
use looplets_repro::baseline::kernels::{all_pairs_similarity_dense, alpha_blend_dense};
use looplets_repro::finch::build::*;
use looplets_repro::finch::{CinExpr, Kernel, Tensor};

fn blend(b: &Tensor, c: &Tensor, alpha: f64, beta: f64) -> looplets_repro::finch::CompiledKernel {
    let shape = b.shape();
    let mut kernel = Kernel::new();
    kernel.bind_input(b).bind_input(c).bind_output("A", &shape, 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            assign(
                access("A", [i.clone(), j.clone()]),
                round_u8(add(
                    mul(lit(alpha), access(b.name(), [i.clone(), j.clone()])),
                    mul(lit(beta), access(c.name(), [i, j])),
                )),
            ),
        ),
    );
    kernel.compile(&program).expect("blend compiles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 64;
    let fg = datagen::stroke_image(size, 3, 21);
    let bg = datagen::stroke_image(size, 2, 22);
    let (alpha, beta) = (0.7, 0.3);
    let reference = alpha_blend_dense(&fg, &bg, alpha, beta);

    println!("alpha blending {size}x{size} images (density {:.2})", datagen::density(&fg));
    println!("{:28} {:>14} {:>12}", "format", "total work", "max |err|");
    for (name, b, c) in [
        (
            "dense",
            Tensor::dense_matrix("B", size, size, &fg),
            Tensor::dense_matrix("Cimg", size, size, &bg),
        ),
        (
            "sparse list",
            Tensor::csr_matrix("B", size, size, &fg),
            Tensor::csr_matrix("Cimg", size, size, &bg),
        ),
        (
            "run-length",
            Tensor::rle_matrix("B", size, size, &fg),
            Tensor::rle_matrix("Cimg", size, size, &bg),
        ),
    ] {
        let mut k = blend(&b, &c, alpha, beta);
        let stats = k.run()?;
        let got = k.output("A").unwrap();
        let err = got.iter().zip(&reference).map(|(g, e)| (g - e).abs()).fold(0.0f64, f64::max);
        println!("{:28} {:>14} {:>12.2e}", name, stats.total_work(), err);
    }

    // --- all-pairs image similarity (Figure 11) -----------------------------
    let count = 8;
    let img = 16;
    let m = img * img;
    let batch = datagen::image_batch(count, img, 31, datagen::blob_image);
    let a = Tensor::vbl_matrix("A", count, m, &batch);
    let a2 = Tensor::vbl_matrix("A2", count, m, &batch);

    let mut kernel = Kernel::new();
    kernel
        .bind_input(&a)
        .bind_input(&a2)
        .bind_output("R", &[count], 0.0)
        .bind_output("O", &[count, count], 0.0)
        .bind_output_scalar("o");
    let (k, l, ij, ij2) = (idx("k"), idx("l"), idx("ij"), idx("ij2"));
    let squares = forall(
        k.clone(),
        forall(
            ij.clone(),
            add_assign(
                access("R", [k.clone()]),
                mul(access("A", [k.clone(), ij.clone()]), access("A", [k.clone(), ij])),
            ),
        ),
    );
    let pairwise = forall(
        k.clone(),
        forall(
            l.clone(),
            where_(
                assign(
                    access("O", [k.clone(), l.clone()]),
                    sqrt(add(
                        add(access("R", [k.clone()]), access("R", [l.clone()])),
                        mul(lit(-2.0), CinExpr::Access(scalar("o"))),
                    )),
                ),
                forall(
                    ij2.clone(),
                    add_assign(
                        scalar("o"),
                        mul(access("A", [k.clone(), ij2.clone()]), access("A2", [l.clone(), ij2])),
                    ),
                ),
            ),
        ),
    );
    let mut compiled = kernel.compile(&multi(vec![squares, pairwise]))?;
    let stats = compiled.run()?;
    let got = compiled.output("O").unwrap();
    let expect = all_pairs_similarity_dense(count, m, &batch);
    let err = got.iter().zip(&expect).map(|(g, e)| (g - e).abs()).fold(0.0f64, f64::max);
    println!(
        "\nall-pairs similarity over {count} VBL images: total work {}, max |err| {err:.2e}",
        stats.total_work()
    );
    Ok(())
}
