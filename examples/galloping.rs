//! Galloping (leader) versus walking (follower) intersections — the
//! protocol flexibility of the paper's §7, shown on skewed inputs where
//! mutual lookahead wins asymptotically.
//!
//! ```bash
//! cargo run --example galloping
//! ```

use looplets_repro::baseline::datagen;
use looplets_repro::finch::build::*;
use looplets_repro::finch::{CompiledKernel, ExecStats, IndexVar, Kernel, Protocol, Tensor};

fn dot(a: &Tensor, b: &Tensor, pa: Protocol, pb: Protocol) -> CompiledKernel {
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(b).bind_output_scalar("C");
    let i = idx("i");
    let with = |p: Protocol, v: &IndexVar| match p {
        Protocol::Gallop => v.gallop(),
        Protocol::Walk => v.walk(),
        Protocol::Locate => v.locate(),
        Protocol::Default => v.clone().into(),
    };
    let program = forall(
        i.clone(),
        add_assign(
            scalar("C"),
            mul(access(a.name(), [with(pa, &i)]), access(b.name(), [with(pb, &i)])),
        ),
    );
    kernel.compile(&program).expect("dot compiles")
}

fn report(name: &str, stats: ExecStats, value: f64) {
    println!(
        "{:24} value {:>12.3}  iterations {:>8}  searches {:>6}",
        name, value, stats.loop_iters, stats.searches
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100_000;
    // A long list intersected with a very short one: the classic case for
    // galloping / worst-case-optimal intersections.
    let long = datagen::random_sparse_vector(n, 0.5, 11);
    let short = datagen::counted_sparse_vector(n, 12, 12);
    let a = Tensor::sparse_list_vector("A", &long);
    let b = Tensor::sparse_list_vector("B", &short);
    println!("|A| = {} nonzeros, |B| = {} nonzeros\n", a.stored(), b.stored());

    let mut walk = dot(&a, &b, Protocol::Walk, Protocol::Walk);
    let walk_stats = walk.run()?;
    report("two-finger (walk/walk)", walk_stats, walk.output_scalar("C").unwrap());

    let mut gallop = dot(&a, &b, Protocol::Gallop, Protocol::Gallop);
    let gallop_stats = gallop.run()?;
    report("galloping (gallop x2)", gallop_stats, gallop.output_scalar("C").unwrap());

    let mut leader = dot(&a, &b, Protocol::Walk, Protocol::Gallop);
    let leader_stats = leader.run()?;
    report("B leads, A follows", leader_stats, leader.output_scalar("C").unwrap());

    println!(
        "\ngalloping visited {:.1}x fewer positions than the two-finger merge",
        walk_stats.loop_iters as f64 / gallop_stats.loop_iters.max(1) as f64
    );
    Ok(())
}
