//! Quickstart: the paper's motivating example (Figure 1).
//!
//! A sparse list (scattered nonzeros) is dotted with a sparse band (one
//! dense block of nonzeros).  The compiler merges the two looplet nests into
//! a loop that *skips directly to the band* and then randomly accesses it,
//! instead of scanning both lists — run the example to see the generated
//! code and the work counters.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use looplets_repro::finch::build::*;
use looplets_repro::finch::{Kernel, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The vectors of the paper's Figure 1c.
    let a_data = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
    let b_data = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];

    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::band_vector("B", &b_data);
    println!("A: sparse list with {} stored values", a.stored());
    println!("B: sparse band with {} stored values\n", b.stored());

    // C[] += A[i] * B[i]
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&b).bind_output_scalar("C");
    let i = idx("i");
    let program =
        forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
    println!("concrete index notation:\n  {program}\n");

    let mut compiled = kernel.compile(&program)?;
    println!("generated code:\n{}", compiled.code());

    let stats = compiled.run()?;
    let reference: f64 = a_data.iter().zip(&b_data).map(|(x, y)| x * y).sum();
    println!("dot product  = {}", compiled.output_scalar("C").unwrap());
    println!("reference    = {reference}");
    println!(
        "work: {} loop iterations, {} loads, {} stores, {} binary searches",
        stats.loop_iters, stats.loads, stats.stores, stats.searches
    );
    Ok(())
}
