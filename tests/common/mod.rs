//! Shared helpers for the integration tests: kernel builders for the
//! paper's benchmarks, and tolerant float comparison.
#![allow(dead_code)]

use looplets_repro::finch::build::*;
use looplets_repro::finch::{
    CompiledKernel, Engine, IndexExpr, IndexVar, Kernel, OptLevel, Protocol, Tensor,
};

/// Run a compiled kernel on both execution engines and panic unless the
/// outputs **and** the `ExecStats` work counters are bit-identical (the
/// bytecode VM is differential-tested against the tree-walking oracle).
pub fn assert_engine_parity(kernel: &mut CompiledKernel, what: &str) {
    let tw_stats = kernel.run_with(Engine::TreeWalk).expect("tree-walk runs");
    let tw_outs: Vec<(String, Vec<u64>)> = kernel
        .output_names()
        .into_iter()
        .map(|n| {
            let bits = kernel.output(&n).unwrap().iter().map(|x| x.to_bits()).collect();
            (n, bits)
        })
        .collect();
    let bc_stats = kernel.run_with(Engine::Bytecode).expect("bytecode runs");
    assert_eq!(tw_stats, bc_stats, "{what}: work counters diverge");
    for (name, tw_bits) in tw_outs {
        let bc_bits: Vec<u64> = kernel.output(&name).unwrap().iter().map(|x| x.to_bits()).collect();
        assert_eq!(tw_bits, bc_bits, "{what}: output {name} is not bit-identical");
    }
}

/// Differential-test a kernel across every [`OptLevel`], both engines,
/// **and** both dispatch modes of the bytecode engine (typed and
/// generic): outputs must be bit-identical for every combination, at each
/// level the two engines must agree on the `ExecStats` work counters
/// exactly, and at each level typed and generic dispatch must agree on
/// both outputs and counters exactly (the typing stage is a 1:1 rewrite —
/// it may not change any counter).  (The counters may legitimately
/// *shrink* as the level rises — that is what the optimiser is for — so
/// they are only compared across engines and dispatch modes, never across
/// levels.)
pub fn assert_opt_level_parity(kernel: &CompiledKernel, what: &str) {
    /// Bit-patterns of every output, keyed by output name.
    type OutputBits = Vec<(String, Vec<u64>)>;
    let mut reference: Option<OutputBits> = None;
    for level in OptLevel::all() {
        let mut per_dispatch: Vec<(bool, looplets_repro::finch::ExecStats, OutputBits)> =
            Vec::new();
        for typed in [true, false] {
            let mut k = kernel.reoptimized_typed(level, typed);
            assert_eq!(k.opt_level(), level);
            assert_eq!(k.typed_dispatch(), typed);
            assert_engine_parity(&mut k, &format!("{what} at {level} (typed={typed})"));
            let stats = k.run_with(Engine::Bytecode).expect("bytecode runs");
            let outs: Vec<(String, Vec<u64>)> = k
                .output_names()
                .into_iter()
                .map(|n| {
                    let bits = k.output(&n).unwrap().iter().map(|x| x.to_bits()).collect();
                    (n, bits)
                })
                .collect();
            per_dispatch.push((typed, stats, outs));
        }
        let (_, typed_stats, typed_outs) = &per_dispatch[0];
        let (_, generic_stats, generic_outs) = &per_dispatch[1];
        assert_eq!(
            typed_stats, generic_stats,
            "{what} at {level}: typed dispatch changed the work counters"
        );
        assert_eq!(
            typed_outs, generic_outs,
            "{what} at {level}: typed dispatch changed the outputs"
        );
        match &reference {
            None => reference = Some(typed_outs.clone()),
            Some(r) => {
                assert_eq!(r, typed_outs, "{what}: outputs diverge between opt levels at {level}");
            }
        }
    }
}

/// Assert two float slices are element-wise equal within a small tolerance.
pub fn assert_close(got: &[f64], expect: &[f64], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length mismatch");
    for (k, (g, e)) in got.iter().zip(expect).enumerate() {
        assert!(
            (g - e).abs() < 1e-6 * (1.0 + e.abs()),
            "{what}: element {k} differs: got {g}, expected {e}"
        );
    }
}

/// Compile `C[] += A[i] * B[i]` over the given vectors and protocols.
pub fn dot_kernel(a: &Tensor, b: &Tensor, pa: Protocol, pb: Protocol) -> CompiledKernel {
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(b).bind_output_scalar("C");
    let i = idx("i");
    let with = |p: Protocol, i: &IndexVar| match p {
        Protocol::Gallop => i.gallop(),
        Protocol::Walk => i.walk(),
        Protocol::Locate => i.locate(),
        Protocol::Default => i.clone().into(),
    };
    let program = forall(
        i.clone(),
        add_assign(
            scalar("C"),
            mul(access(a.name(), [with(pa, &i)]), access(b.name(), [with(pb, &i)])),
        ),
    );
    kernel.compile(&program).expect("dot kernel compiles")
}

/// Compile the paper's SpMSpV kernel `y[i] += A[i,j] * x[j]` with the given
/// protocol on the inner dimension of `A` and on `x`.
pub fn spmspv_kernel(a: &Tensor, x: &Tensor, pa: Protocol, px: Protocol) -> CompiledKernel {
    let mut kernel = Kernel::new();
    let nrows = a.shape()[0];
    kernel.bind_input(a).bind_input(x).bind_output("y", &[nrows], 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let with = |p: Protocol, v: &IndexVar| match p {
        Protocol::Gallop => v.gallop(),
        Protocol::Walk => v.walk(),
        Protocol::Locate => v.locate(),
        Protocol::Default => v.clone().into(),
    };
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            add_assign(
                access("y", [i.clone()]),
                mul(access(a.name(), [i.into(), with(pa, &j)]), access(x.name(), [with(px, &j)])),
            ),
        ),
    );
    kernel.compile(&program).expect("spmspv kernel compiles")
}

/// Compile the triangle counting kernel
/// `C[] += A[i,j] * A2[j,k] * At[i,k]` (the paper transposes the last
/// argument so that every access is concordant).
pub fn triangle_kernel(a: &Tensor, a2: &Tensor, at: &Tensor, gallop: bool) -> CompiledKernel {
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(a2).bind_input(at).bind_output_scalar("C");
    let (i, j, k) = (idx("i"), idx("j"), idx("k"));
    let inner = |v: &IndexVar| if gallop { v.gallop() } else { v.walk() };
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            forall(
                k.clone(),
                add_assign(
                    scalar("C"),
                    mul3(
                        access(a.name(), [IndexExpr::from(i.clone()), IndexExpr::from(j.clone())]),
                        access(a2.name(), [IndexExpr::from(j), inner(&k)]),
                        access(at.name(), [IndexExpr::from(i), inner(&k)]),
                    ),
                ),
            ),
        ),
    );
    kernel.compile(&program).expect("triangle kernel compiles")
}

/// Compile the alpha-blending kernel
/// `A[i,j] = round(alpha * B[i,j] + beta * C[i,j])`.
pub fn blend_kernel(b: &Tensor, c: &Tensor, alpha: f64, beta: f64) -> CompiledKernel {
    let mut kernel = Kernel::new();
    let shape = b.shape();
    kernel.bind_input(b).bind_input(c).bind_output("A", &shape, 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            assign(
                access("A", [i.clone(), j.clone()]),
                round_u8(add(
                    mul(lit(alpha), access(b.name(), [i.clone(), j.clone()])),
                    mul(lit(beta), access(c.name(), [i, j])),
                )),
            ),
        ),
    );
    kernel.compile(&program).expect("blend kernel compiles")
}

/// Compile the all-pairs image similarity kernel of Figure 11:
///
/// ```text
/// @forall k ij   R[k] += A[k, ij]^2
/// @forall k l    (O[k,l] = sqrt(R[k] + R[l] - 2*o[])) where (@forall ij o[] += A[k,ij] * A2[l,ij])
/// ```
pub fn all_pairs_kernel(a: &Tensor, a2: &Tensor) -> CompiledKernel {
    let n = a.shape()[0];
    let mut kernel = Kernel::new();
    kernel
        .bind_input(a)
        .bind_input(a2)
        .bind_output("R", &[n], 0.0)
        .bind_output("O", &[n, n], 0.0)
        .bind_output_scalar("o");
    let (k, l, ij, ij2) = (idx("k"), idx("l"), idx("ij"), idx("ij2"));
    let squares = forall(
        k.clone(),
        forall(
            ij.clone(),
            add_assign(
                access("R", [k.clone()]),
                mul(access(a.name(), [k.clone(), ij.clone()]), access(a.name(), [k.clone(), ij])),
            ),
        ),
    );
    let pairwise = forall(
        k.clone(),
        forall(
            l.clone(),
            where_(
                assign(
                    access("O", [k.clone(), l.clone()]),
                    sqrt(add(
                        add(access("R", [k.clone()]), access("R", [l.clone()])),
                        mul(lit(-2.0), read_scalar("o")),
                    )),
                ),
                forall(
                    ij2.clone(),
                    add_assign(
                        scalar("o"),
                        mul(
                            access(a.name(), [k.clone(), ij2.clone()]),
                            access(a2.name(), [l.clone(), ij2]),
                        ),
                    ),
                ),
            ),
        ),
    );
    let program = multi(vec![squares, pairwise]);
    kernel.compile(&program).expect("all-pairs kernel compiles")
}

/// A zero-dimensional tensor read as an expression (e.g. the `o[]` of the
/// all-pairs kernel).
pub fn read_scalar(name: &str) -> looplets_repro::finch::CinExpr {
    looplets_repro::finch::CinExpr::Access(scalar(name))
}
