//! Resilience regression tests: aborted executions must leave the
//! persistent VM reusable (the next rerun is bit-identical to a fresh
//! compile), and the kernel service must stay correct under concurrency
//! and injected faults.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use looplets_repro::finch::build::*;
use looplets_repro::finch::{
    BreakerPolicy, CompiledKernel, DrainReport, Engine, FaultKind, FaultPlan, FaultRule,
    HealthSnapshot, InjectPoint, Kernel, KernelService, LevelSpec, Request, RuntimeError,
    ServiceConfig, ServiceError, ServiceState, Tensor, Tier, Watch,
};

/// A kernel with a sparse (assembled) output: the abort paths must leave
/// its `pos`/`idx`/`val` buffers mid-append, the worst case for reuse.
fn sparse_mul_kernel(av: &[f64], bv: &[f64]) -> CompiledKernel {
    let a = Tensor::sparse_list_vector("A", av);
    let b = Tensor::sparse_list_vector("B", bv);
    let mut kernel = Kernel::new();
    kernel
        .bind_input(&a)
        .bind_input(&b)
        .bind_output_format("C", &[LevelSpec::SparseList { size: av.len() }]);
    let i = idx("i");
    let program = forall(
        i.clone(),
        assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
    );
    kernel.compile(&program).expect("sparse mul compiles")
}

fn test_data(n: usize) -> (Vec<f64>, Vec<f64>) {
    let av: Vec<f64> = (0..n).map(|k| if k % 3 != 1 { k as f64 + 0.5 } else { 0.0 }).collect();
    let bv: Vec<f64> = (0..n).map(|k| if k % 2 == 0 { 2.0 - k as f64 } else { 0.0 }).collect();
    (av, bv)
}

/// The rerun-after-abort contract, shared by the abort-path tests: after
/// `abort` has driven the kernel into a mid-execution typed error, clearing
/// the limit and re-running must reproduce a fresh compile bit-for-bit.
fn assert_reusable_after(
    engine: Engine,
    abort: impl FnOnce(&mut CompiledKernel) -> RuntimeError,
    what: &str,
) {
    let (av, bv) = test_data(24);
    let mut k = sparse_mul_kernel(&av, &bv);
    k.set_engine(engine);
    let err = abort(&mut k);
    match err {
        RuntimeError::StepBudgetExceeded { .. }
        | RuntimeError::Deadline { .. }
        | RuntimeError::AllocBudgetExceeded { .. } => {}
        other => panic!("{what}: expected a resource abort, got {other}"),
    }

    // Clear every limit and rerun on the same VM and buffers.
    k.clear_step_budget();
    k.set_watch(None);
    k.set_alloc_budget(None);
    let stats = k.run().unwrap_or_else(|e| panic!("{what}: rerun after abort failed: {e}"));
    let rerun = k.output_tensor("C").expect("rerun output");

    // A fresh compile of the same kernel is the reference.
    let mut fresh = sparse_mul_kernel(&av, &bv);
    fresh.set_engine(engine);
    let fresh_stats = fresh.run().expect("fresh run");
    let reference = fresh.output_tensor("C").expect("fresh output");

    assert_eq!(stats, fresh_stats, "{what}: work counters diverge after abort");
    assert_eq!(
        format!("{rerun:?}"),
        format!("{reference:?}"),
        "{what}: assembled sparse output diverges after abort"
    );
    let rerun_bits: Vec<u64> = rerun.values().iter().map(|v| v.to_bits()).collect();
    let fresh_bits: Vec<u64> = reference.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(rerun_bits, fresh_bits, "{what}: value bits diverge after abort");
}

#[test]
fn budget_abort_mid_sparse_append_leaves_vm_reusable() {
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        assert_reusable_after(
            engine,
            |k| {
                k.set_step_budget(7);
                k.run().expect_err("budget must trip")
            },
            &format!("step budget ({engine:?})"),
        );
    }
}

#[test]
fn cancellation_mid_sparse_append_leaves_vm_reusable() {
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        assert_reusable_after(
            engine,
            |k| {
                // A pre-raised cancel flag aborts on the first statement.
                k.set_watch(Some(Watch::cancelled_by(Arc::new(AtomicBool::new(true)), 7)));
                k.run().expect_err("cancellation must trip")
            },
            &format!("cancellation ({engine:?})"),
        );
    }
}

#[test]
fn alloc_budget_abort_mid_sparse_append_leaves_vm_reusable() {
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        assert_reusable_after(
            engine,
            |k| {
                k.set_alloc_budget(Some(2));
                k.run().expect_err("allocation budget must trip")
            },
            &format!("alloc budget ({engine:?})"),
        );
    }
}

#[test]
fn kernel_service_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KernelService>();
    assert_send_sync::<looplets_repro::finch::Request>();
    assert_send_sync::<looplets_repro::finch::Response>();
    assert_send_sync::<ServiceError>();
    assert_send_sync::<FaultPlan>();
    assert_send_sync::<ServiceState>();
    assert_send_sync::<DrainReport>();
    assert_send_sync::<HealthSnapshot>();
    assert_send_sync::<BreakerPolicy>();
}

/// A dense dot-product request plus its expected scalar; every `scale`
/// shares one structure (and therefore one cache entry and one breaker).
fn dense_dot_request(scale: f64) -> (Request, f64) {
    let n = 12;
    let av: Vec<f64> = (0..n).map(|k| scale * (k as f64 + 1.0)).collect();
    let bv: Vec<f64> = (0..n).map(|k| 0.25 * k as f64 - 1.0).collect();
    let expected = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
    let a = Tensor::dense_vector("A", &av);
    let b = Tensor::dense_vector("B", &bv);
    let i = idx("i");
    let program =
        forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
    (Request::new(program).input(&a).input(&b).output_scalar("C"), expected)
}

fn stall_rule(request: u64) -> FaultRule {
    FaultRule { request, point: InjectPoint::PreRun, kind: FaultKind::Stall }
}

#[test]
fn draining_rejects_new_work_and_completes_in_flight_requests() {
    let svc = Arc::new(KernelService::new(ServiceConfig {
        max_in_flight: 2,
        queue_depth: 4,
        ..ServiceConfig::default()
    }));
    let (req, _) = dense_dot_request(1.0);
    svc.submit(&req).unwrap(); // rid 0 warms the cache

    // rid 1 stalls in flight: the drain must wait for it.
    let mut plan = FaultPlan::new();
    plan.push(stall_rule(1));
    svc.install_faults(plan);
    let (in_flight_req, in_flight_expected) = dense_dot_request(2.0);
    let in_flight = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || svc.submit(&in_flight_req))
    };
    while svc.stalled() == 0 {
        std::thread::yield_now();
    }

    let drainer = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || svc.drain(Duration::from_secs(10)))
    };
    while svc.state() == ServiceState::Running {
        std::thread::yield_now();
    }

    // While draining, new work is rejected with the typed shutdown error.
    let (rejected, _) = dense_dot_request(3.0);
    match svc.submit(&rejected) {
        Err(ServiceError::ShuttingDown { state: ServiceState::Draining }) => {}
        other => panic!("expected ShuttingDown while draining, got {other:?}"),
    }

    // Releasing the stall lets the in-flight request complete cleanly and
    // the drain finish without cancelling anything.
    svc.release_stalls();
    let resp = in_flight.join().unwrap().expect("in-flight request completes during drain");
    assert_eq!(resp.scalar.unwrap().to_bits(), in_flight_expected.to_bits());
    let report = drainer.join().unwrap();
    assert!(!report.cancelled, "nothing overran the drain deadline");
    assert_eq!(report.state, ServiceState::Stopped);

    // Resume re-opens admission and the cache survived.
    svc.resume();
    assert_eq!(svc.state(), ServiceState::Running);
    let (after, after_expected) = dense_dot_request(-1.5);
    let resp = svc.submit(&after).unwrap();
    assert!(resp.cache_hit, "the drain kept the compiled cache");
    assert_eq!(resp.scalar.unwrap().to_bits(), after_expected.to_bits());
}

#[test]
fn an_overrun_drain_cancels_stuck_work_with_a_typed_error() {
    let svc = Arc::new(KernelService::new(ServiceConfig {
        max_in_flight: 2,
        queue_depth: 4,
        ..ServiceConfig::default()
    }));
    let (req, _) = dense_dot_request(1.0);
    svc.submit(&req).unwrap();

    // rid 1 stalls with no deadline: only the drain's cancel cuts it loose.
    let mut plan = FaultPlan::new();
    plan.push(stall_rule(1));
    svc.install_faults(plan);
    let stuck = {
        let svc = Arc::clone(&svc);
        let (req, _) = dense_dot_request(2.0);
        std::thread::spawn(move || svc.submit(&req))
    };
    while svc.stalled() == 0 {
        std::thread::yield_now();
    }

    let report = svc.drain(Duration::from_millis(40));
    assert!(report.cancelled, "the stalled request overran the drain deadline");
    assert_eq!(report.state, ServiceState::Stopped);
    match stuck.join().unwrap() {
        Err(ServiceError::Runtime(RuntimeError::Deadline { .. })) => {}
        other => panic!("expected the drain to cancel the stalled request, got {other:?}"),
    }
    assert_eq!(svc.stalled(), 0, "no thread left parked on the stall gate");

    // A stopped service keeps rejecting until resumed.
    match svc.submit(&req) {
        Err(ServiceError::ShuttingDown { state: ServiceState::Stopped }) => {}
        other => panic!("expected ShuttingDown when stopped, got {other:?}"),
    }
    svc.resume();
    assert!(svc.submit(&req).unwrap().cache_hit);
}

#[test]
fn breaker_opens_after_threshold_and_degrades_to_the_oracle() {
    let svc = KernelService::new(ServiceConfig {
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(3600),
        breaker_policy: BreakerPolicy::Degrade,
        retry_backoff: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let (req, expected) = dense_dot_request(1.0);
    svc.submit(&req).unwrap(); // rid 0: clean, breaker stays closed

    // rid 1 faults twice (the fast attempt and its quarantine retry):
    // crosses the threshold inside one request.
    let mut plan = FaultPlan::new();
    plan.push(FaultRule { request: 1, point: InjectPoint::PreRun, kind: FaultKind::Panic });
    plan.push(FaultRule { request: 1, point: InjectPoint::PostRun, kind: FaultKind::Panic });
    svc.install_faults(plan);
    let resp = svc.submit(&req).unwrap();
    assert_eq!(resp.tier, Tier::TypedSerial, "two fast-tier faults degrade one tier");
    assert_eq!(resp.scalar.unwrap().to_bits(), expected.to_bits());
    assert_eq!(svc.health().breakers_open, 1);

    // Within the cooldown the structure short-circuits straight to the
    // oracle tier — still bit-identical, no wasted fast-tier attempts.
    let resp = svc.submit(&req).unwrap();
    assert_eq!(resp.tier, Tier::Oracle);
    assert_eq!(resp.scalar.unwrap().to_bits(), expected.to_bits());
    let stats = svc.stats();
    assert_eq!(stats.breaker_opens, 1);
    assert_eq!(stats.breaker_short_circuits, 1);
}

#[test]
fn a_clean_half_open_probe_closes_the_breaker() {
    let svc = KernelService::new(ServiceConfig {
        breaker_threshold: 1,
        breaker_cooldown: Duration::ZERO,
        breaker_policy: BreakerPolicy::Degrade,
        retry_backoff: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let (req, expected) = dense_dot_request(1.0);
    svc.submit(&req).unwrap(); // rid 0
    let mut plan = FaultPlan::new();
    plan.push(FaultRule { request: 1, point: InjectPoint::PreRun, kind: FaultKind::Panic });
    svc.install_faults(plan);
    svc.submit(&req).unwrap(); // rid 1: one fault opens the breaker
    assert_eq!(svc.health().breakers_open, 1);

    // Zero cooldown: the next request is the half-open probe.  It runs the
    // full ladder cleanly and closes the breaker.
    let resp = svc.submit(&req).unwrap();
    assert_eq!(resp.tier, Tier::Fast);
    assert_eq!(resp.scalar.unwrap().to_bits(), expected.to_bits());
    let health = svc.health();
    assert_eq!(
        (health.breakers_closed, health.breakers_open, health.breakers_half_open),
        (1, 0, 0)
    );
    assert_eq!(svc.stats().breaker_short_circuits, 0, "the probe was admitted, not shed");
}

#[test]
fn a_faulting_probe_reopens_the_breaker() {
    let svc = KernelService::new(ServiceConfig {
        breaker_threshold: 1,
        breaker_cooldown: Duration::ZERO,
        breaker_policy: BreakerPolicy::Degrade,
        retry_backoff: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let (req, expected) = dense_dot_request(1.0);
    svc.submit(&req).unwrap(); // rid 0
    let mut plan = FaultPlan::new();
    plan.push(FaultRule { request: 1, point: InjectPoint::PreRun, kind: FaultKind::Panic });
    plan.push(FaultRule { request: 2, point: InjectPoint::PreRun, kind: FaultKind::Panic });
    svc.install_faults(plan);
    svc.submit(&req).unwrap(); // rid 1: opens
    let resp = svc.submit(&req).unwrap(); // rid 2: the probe itself faults
    assert_eq!(resp.scalar.unwrap().to_bits(), expected.to_bits());
    let stats = svc.stats();
    assert_eq!(stats.breaker_opens, 2, "the faulting probe re-opened the breaker");
    assert_eq!(svc.health().breakers_open, 1);
}

#[test]
fn an_open_breaker_rejects_when_configured() {
    let svc = KernelService::new(ServiceConfig {
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(3600),
        breaker_policy: BreakerPolicy::Reject,
        retry_backoff: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let (req, _) = dense_dot_request(1.0);
    svc.submit(&req).unwrap();
    let mut plan = FaultPlan::new();
    plan.push(FaultRule { request: 1, point: InjectPoint::PreRun, kind: FaultKind::Panic });
    svc.install_faults(plan);
    svc.submit(&req).unwrap(); // rid 1 opens the breaker
    match svc.submit(&req) {
        Err(ServiceError::CircuitOpen { consecutive_faults: 1, .. }) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert_eq!(svc.stats().breaker_short_circuits, 1);
}

#[test]
fn deadline_expiry_is_attributed_to_queue_or_execution_never_lost() {
    let svc = Arc::new(KernelService::new(ServiceConfig {
        max_in_flight: 1,
        queue_depth: 4,
        deadline: Some(Duration::from_millis(30)),
        ..ServiceConfig::default()
    }));
    let (req, _) = dense_dot_request(1.0);
    svc.submit(&req).unwrap(); // rid 0

    // Both followers stall: the first holds the only slot until its
    // deadline, the second spends most (or all) of its budget queued.
    let mut plan = FaultPlan::new();
    plan.push(stall_rule(1));
    plan.push(stall_rule(2));
    svc.install_faults(plan);
    let holder = {
        let svc = Arc::clone(&svc);
        let (req, _) = dense_dot_request(2.0);
        std::thread::spawn(move || svc.submit(&req))
    };
    while svc.stalled() == 0 {
        std::thread::yield_now();
    }
    let queued_result = svc.submit(&req);

    // The slot holder's expiry is execution-attributed: it was admitted.
    match holder.join().unwrap() {
        Err(ServiceError::Runtime(RuntimeError::Deadline { .. })) => {}
        other => panic!("expected the stalled holder to hit its deadline, got {other:?}"),
    }
    // The queued request's expiry is typed either way — as a queue timeout
    // if it was never admitted, or as an execution deadline if it got the
    // slot with too little budget left.  Never shed, never lost.
    let stats = svc.stats();
    match queued_result {
        Err(ServiceError::QueueTimeout { .. }) => {
            assert_eq!(stats.queue_timeouts, 1, "queue expiry counted as a queue timeout");
        }
        Err(ServiceError::Runtime(RuntimeError::Deadline { .. })) => {
            assert!(stats.deadline_errors >= 2, "execution expiry counted as a deadline");
        }
        other => panic!("expected a typed deadline-family error, got {other:?}"),
    }
    assert_eq!(stats.shed, 0, "a bounded queue waits instead of shedding");
}

#[test]
fn concurrent_clients_share_the_cache_and_agree_with_references() {
    use finch_bench::trace::{self, TraceConfig};

    let tcfg =
        TraceConfig { kernels: 3, instances: 2, requests: 0, scale: 2, ..Default::default() };
    let svc = KernelService::new(ServiceConfig {
        capacity: 8,
        deadline: Some(Duration::from_secs(5)),
        ..ServiceConfig::default()
    });
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let svc = &svc;
            let tcfg = &tcfg;
            scope.spawn(move || {
                for round in 0..6usize {
                    let kernel = (c + round) % 3;
                    let instance = round % 2;
                    let resp = svc
                        .submit(&trace::build_request(tcfg, kernel, instance))
                        .unwrap_or_else(|e| panic!("client {c} round {round}: {e}"));
                    let got: Vec<u64> =
                        trace::response_values(&resp).iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u64> = trace::reference_values(tcfg, kernel, instance)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(got, want, "client {c} round {round} diverged");
                }
            });
        }
    });
    let stats = svc.stats();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.compiles, 3, "three structures, each compiled once");
    assert_eq!(stats.hits, 21);
}

#[test]
fn service_survives_a_full_fault_barrage_with_typed_outcomes_only() {
    use finch_bench::trace::{self, TraceConfig};

    let tcfg =
        TraceConfig { kernels: 3, instances: 2, requests: 0, scale: 2, ..Default::default() };
    let svc = KernelService::new(ServiceConfig { capacity: 4, ..ServiceConfig::default() });

    // Every fault kind at every injection point, all on a warm cache.
    let mut rid = 0u64;
    for kernel in 0..3usize {
        svc.submit(&trace::build_request(&tcfg, kernel, 0)).expect("warm-up");
        rid += 1;
    }
    let mut plan = FaultPlan::new();
    let mut expected: Vec<(u64, usize, bool)> = Vec::new(); // (rid, kernel, must_succeed)
    let points =
        [InjectPoint::Lookup, InjectPoint::PreRun, InjectPoint::MidRun, InjectPoint::PostRun];
    let kinds = [
        FaultKind::PoisonEntry,
        FaultKind::Panic,
        FaultKind::BudgetExhaustion,
        FaultKind::DeadlineExpiry,
    ];
    for (pi, point) in points.iter().enumerate() {
        for (ki, kind) in kinds.iter().enumerate() {
            // PoisonEntry pairs with the lookup point and the other kinds
            // with the execution points; mismatched pairs are no-ops.
            if (*point == InjectPoint::Lookup) != (*kind == FaultKind::PoisonEntry) {
                continue;
            }
            plan.push(FaultRule { request: rid, point: *point, kind: *kind });
            let succeeds = matches!(kind, FaultKind::Panic | FaultKind::PoisonEntry);
            expected.push((rid, (pi + ki) % 3, succeeds));
            rid += 1;
        }
    }
    svc.install_faults(plan);

    for (req_id, kernel, must_succeed) in expected {
        let result = svc.submit(&trace::build_request(&tcfg, kernel, 1));
        match result {
            Ok(resp) => {
                assert!(must_succeed, "request {req_id} should have hit a resource error");
                let got: Vec<u64> =
                    trace::response_values(&resp).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> =
                    trace::reference_values(&tcfg, kernel, 1).iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "request {req_id} served a wrong result");
            }
            Err(ServiceError::Runtime(
                RuntimeError::StepBudgetExceeded { .. } | RuntimeError::Deadline { .. },
            )) => {
                assert!(!must_succeed, "request {req_id} should have been served");
            }
            Err(other) => panic!("request {req_id}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(svc.pending_faults(), 0, "every injected fault fired");
    let stats = svc.stats();
    assert!(stats.panics > 0 && stats.quarantined > 0);
}
