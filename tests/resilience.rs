//! Resilience regression tests: aborted executions must leave the
//! persistent VM reusable (the next rerun is bit-identical to a fresh
//! compile), and the kernel service must stay correct under concurrency
//! and injected faults.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use looplets_repro::finch::build::*;
use looplets_repro::finch::{
    CompiledKernel, Engine, FaultKind, FaultPlan, FaultRule, InjectPoint, Kernel, KernelService,
    LevelSpec, RuntimeError, ServiceConfig, ServiceError, Tensor, Watch,
};

/// A kernel with a sparse (assembled) output: the abort paths must leave
/// its `pos`/`idx`/`val` buffers mid-append, the worst case for reuse.
fn sparse_mul_kernel(av: &[f64], bv: &[f64]) -> CompiledKernel {
    let a = Tensor::sparse_list_vector("A", av);
    let b = Tensor::sparse_list_vector("B", bv);
    let mut kernel = Kernel::new();
    kernel
        .bind_input(&a)
        .bind_input(&b)
        .bind_output_format("C", &[LevelSpec::SparseList { size: av.len() }]);
    let i = idx("i");
    let program = forall(
        i.clone(),
        assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
    );
    kernel.compile(&program).expect("sparse mul compiles")
}

fn test_data(n: usize) -> (Vec<f64>, Vec<f64>) {
    let av: Vec<f64> = (0..n).map(|k| if k % 3 != 1 { k as f64 + 0.5 } else { 0.0 }).collect();
    let bv: Vec<f64> = (0..n).map(|k| if k % 2 == 0 { 2.0 - k as f64 } else { 0.0 }).collect();
    (av, bv)
}

/// The rerun-after-abort contract, shared by the abort-path tests: after
/// `abort` has driven the kernel into a mid-execution typed error, clearing
/// the limit and re-running must reproduce a fresh compile bit-for-bit.
fn assert_reusable_after(
    engine: Engine,
    abort: impl FnOnce(&mut CompiledKernel) -> RuntimeError,
    what: &str,
) {
    let (av, bv) = test_data(24);
    let mut k = sparse_mul_kernel(&av, &bv);
    k.set_engine(engine);
    let err = abort(&mut k);
    match err {
        RuntimeError::StepBudgetExceeded { .. }
        | RuntimeError::Deadline { .. }
        | RuntimeError::AllocBudgetExceeded { .. } => {}
        other => panic!("{what}: expected a resource abort, got {other}"),
    }

    // Clear every limit and rerun on the same VM and buffers.
    k.clear_step_budget();
    k.set_watch(None);
    k.set_alloc_budget(None);
    let stats = k.run().unwrap_or_else(|e| panic!("{what}: rerun after abort failed: {e}"));
    let rerun = k.output_tensor("C").expect("rerun output");

    // A fresh compile of the same kernel is the reference.
    let mut fresh = sparse_mul_kernel(&av, &bv);
    fresh.set_engine(engine);
    let fresh_stats = fresh.run().expect("fresh run");
    let reference = fresh.output_tensor("C").expect("fresh output");

    assert_eq!(stats, fresh_stats, "{what}: work counters diverge after abort");
    assert_eq!(
        format!("{rerun:?}"),
        format!("{reference:?}"),
        "{what}: assembled sparse output diverges after abort"
    );
    let rerun_bits: Vec<u64> = rerun.values().iter().map(|v| v.to_bits()).collect();
    let fresh_bits: Vec<u64> = reference.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(rerun_bits, fresh_bits, "{what}: value bits diverge after abort");
}

#[test]
fn budget_abort_mid_sparse_append_leaves_vm_reusable() {
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        assert_reusable_after(
            engine,
            |k| {
                k.set_step_budget(7);
                k.run().expect_err("budget must trip")
            },
            &format!("step budget ({engine:?})"),
        );
    }
}

#[test]
fn cancellation_mid_sparse_append_leaves_vm_reusable() {
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        assert_reusable_after(
            engine,
            |k| {
                // A pre-raised cancel flag aborts on the first statement.
                k.set_watch(Some(Watch::cancelled_by(Arc::new(AtomicBool::new(true)), 7)));
                k.run().expect_err("cancellation must trip")
            },
            &format!("cancellation ({engine:?})"),
        );
    }
}

#[test]
fn alloc_budget_abort_mid_sparse_append_leaves_vm_reusable() {
    for engine in [Engine::Bytecode, Engine::TreeWalk] {
        assert_reusable_after(
            engine,
            |k| {
                k.set_alloc_budget(Some(2));
                k.run().expect_err("allocation budget must trip")
            },
            &format!("alloc budget ({engine:?})"),
        );
    }
}

#[test]
fn kernel_service_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KernelService>();
    assert_send_sync::<looplets_repro::finch::Request>();
    assert_send_sync::<looplets_repro::finch::Response>();
    assert_send_sync::<ServiceError>();
    assert_send_sync::<FaultPlan>();
}

#[test]
fn concurrent_clients_share_the_cache_and_agree_with_references() {
    use finch_bench::trace::{self, TraceConfig};

    let tcfg =
        TraceConfig { kernels: 3, instances: 2, requests: 0, scale: 2, ..Default::default() };
    let svc = KernelService::new(ServiceConfig {
        capacity: 8,
        deadline: Some(Duration::from_secs(5)),
        ..ServiceConfig::default()
    });
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let svc = &svc;
            let tcfg = &tcfg;
            scope.spawn(move || {
                for round in 0..6usize {
                    let kernel = (c + round) % 3;
                    let instance = round % 2;
                    let resp = svc
                        .submit(&trace::build_request(tcfg, kernel, instance))
                        .unwrap_or_else(|e| panic!("client {c} round {round}: {e}"));
                    let got: Vec<u64> =
                        trace::response_values(&resp).iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u64> = trace::reference_values(tcfg, kernel, instance)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(got, want, "client {c} round {round} diverged");
                }
            });
        }
    });
    let stats = svc.stats();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.compiles, 3, "three structures, each compiled once");
    assert_eq!(stats.hits, 21);
}

#[test]
fn service_survives_a_full_fault_barrage_with_typed_outcomes_only() {
    use finch_bench::trace::{self, TraceConfig};

    let tcfg =
        TraceConfig { kernels: 3, instances: 2, requests: 0, scale: 2, ..Default::default() };
    let svc = KernelService::new(ServiceConfig { capacity: 4, ..ServiceConfig::default() });

    // Every fault kind at every injection point, all on a warm cache.
    let mut rid = 0u64;
    for kernel in 0..3usize {
        svc.submit(&trace::build_request(&tcfg, kernel, 0)).expect("warm-up");
        rid += 1;
    }
    let mut plan = FaultPlan::new();
    let mut expected: Vec<(u64, usize, bool)> = Vec::new(); // (rid, kernel, must_succeed)
    let points =
        [InjectPoint::Lookup, InjectPoint::PreRun, InjectPoint::MidRun, InjectPoint::PostRun];
    let kinds = [
        FaultKind::PoisonEntry,
        FaultKind::Panic,
        FaultKind::BudgetExhaustion,
        FaultKind::DeadlineExpiry,
    ];
    for (pi, point) in points.iter().enumerate() {
        for (ki, kind) in kinds.iter().enumerate() {
            // PoisonEntry pairs with the lookup point and the other kinds
            // with the execution points; mismatched pairs are no-ops.
            if (*point == InjectPoint::Lookup) != (*kind == FaultKind::PoisonEntry) {
                continue;
            }
            plan.push(FaultRule { request: rid, point: *point, kind: *kind });
            let succeeds = matches!(kind, FaultKind::Panic | FaultKind::PoisonEntry);
            expected.push((rid, (pi + ki) % 3, succeeds));
            rid += 1;
        }
    }
    svc.install_faults(plan);

    for (req_id, kernel, must_succeed) in expected {
        let result = svc.submit(&trace::build_request(&tcfg, kernel, 1));
        match result {
            Ok(resp) => {
                assert!(must_succeed, "request {req_id} should have hit a resource error");
                let got: Vec<u64> =
                    trace::response_values(&resp).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> =
                    trace::reference_values(&tcfg, kernel, 1).iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "request {req_id} served a wrong result");
            }
            Err(ServiceError::Runtime(
                RuntimeError::StepBudgetExceeded { .. } | RuntimeError::Deadline { .. },
            )) => {
                assert!(!must_succeed, "request {req_id} should have been served");
            }
            Err(other) => panic!("request {req_id}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(svc.pending_faults(), 0, "every injected fault fired");
    let stats = svc.stats();
    assert!(stats.panics > 0 && stats.quarantined > 0);
}
