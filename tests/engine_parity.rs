//! Differential tests between the two execution engines: every kernel of
//! the five `examples/` (and the remaining figure kernels) must produce
//! bit-identical outputs **and** bit-identical `ExecStats` work counters on
//! the tree-walking interpreter and the flat register bytecode VM.

mod common;

use common::assert_engine_parity;
use looplets_repro::baseline::datagen;
use looplets_repro::finch::Protocol;
use looplets_repro::finch::{Engine, Tensor};

/// The quickstart example: sparse list × sparse band dot product.
#[test]
fn quickstart_dot_list_x_band_parity() {
    let a_data = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
    let b_data = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::band_vector("B", &b_data);
    let mut k = common::dot_kernel(&a, &b, Protocol::Default, Protocol::Default);
    assert_engine_parity(&mut k, "quickstart");
}

/// The galloping example: gallop × gallop sparse dot product (exercises the
/// Seek instruction).
#[test]
fn galloping_dot_parity() {
    let a_data = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
    let b_data = vec![0.0, 0.0, 0.0, 3.7, 0.0, 9.2, 0.0, 8.7, 0.0, 0.0, 5.0];
    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::sparse_list_vector("B", &b_data);
    let mut k = common::dot_kernel(&a, &b, Protocol::Gallop, Protocol::Gallop);
    let stats = k.run().unwrap();
    assert!(stats.searches > 0, "galloping must binary search");
    assert_engine_parity(&mut k, "galloping");
}

/// The spmspv example: CSR matrix times sparse vector, all protocol
/// combinations of Figure 7.
#[test]
fn spmspv_parity_across_protocols() {
    let n = 48;
    let dense_a = datagen::scientific_matrix(n, 2, 4, 0.004, 42);
    let xv = datagen::counted_sparse_vector(n, 6, 9);
    let a = Tensor::csr_matrix("A", n, n, &dense_a);
    let x = Tensor::sparse_list_vector("x", &xv);
    for (pa, px) in [
        (Protocol::Walk, Protocol::Walk),
        (Protocol::Gallop, Protocol::Walk),
        (Protocol::Walk, Protocol::Gallop),
        (Protocol::Gallop, Protocol::Gallop),
    ] {
        let mut k = common::spmspv_kernel(&a, &x, pa, px);
        assert_engine_parity(&mut k, &format!("spmspv {pa:?}/{px:?}"));
    }
}

/// The convolution example: masked sparse convolution (exercises `permit`,
/// missing propagation and `coalesce` on both engines).
#[test]
fn convolution_parity_dense_and_sparse() {
    let size = 14;
    let ksize = 3;
    let grid = datagen::sparse_grid(size, size, 0.12, 77);
    let filter: Vec<f64> = (0..ksize * ksize).map(|v| 0.5 + (v % 5) as f64 * 0.1).collect();
    for sparse in [false, true] {
        let mut k = finch_bench::conv_kernel(&grid, size, ksize, &filter, sparse);
        assert_engine_parity(&mut k, if sparse { "conv sparse" } else { "conv dense" });
    }
}

/// The image blend example: `A = round(αB + βC)` over dense, CSR and RLE
/// formats (exercises the Round unary and plain stores).
#[test]
fn image_blend_parity_across_formats() {
    let size = 16;
    let fg = datagen::stroke_image(size, 3, 5);
    let bg = datagen::stroke_image(size, 2, 6);
    type MatrixBuilder = fn(&str, usize, usize, &[f64]) -> Tensor;
    let builders: [(&str, MatrixBuilder); 3] = [
        ("dense", |n, r, c, d| Tensor::dense_matrix(n, r, c, d)),
        ("csr", |n, r, c, d| Tensor::csr_matrix(n, r, c, d)),
        ("rle", |n, r, c, d| Tensor::rle_matrix(n, r, c, d)),
    ];
    for (fmt, build) in builders {
        let b = build("B", size, size, &fg);
        let c = build("Cimg", size, size, &bg);
        let mut k = finch_bench::blend_kernel(&b, &c, 0.6, 0.4);
        assert_engine_parity(&mut k, &format!("blend {fmt}"));
    }
}

/// The remaining figure kernels: triangle counting and all-pairs image
/// similarity (deep loop nests, `where`-bound temporaries, sqrt).
#[test]
fn triangle_and_all_pairs_parity() {
    let adj = datagen::power_law_graph(24, 2, 3);
    for gallop in [false, true] {
        let mut k = finch_bench::triangle_kernel(&adj, 24, gallop);
        assert_engine_parity(&mut k, if gallop { "triangles gallop" } else { "triangles walk" });
    }
    for mut v in finch_bench::fig11_variants(3, 8, "mnist") {
        assert_engine_parity(&mut v.kernel, &format!("all-pairs {}", v.label));
    }
}

/// Sparse output assembly: both engines must append bit-identical
/// `pos`/`idx`/`val` arrays with identical work counters, and the dense
/// materialisation must equal the dense-output run of the same program.
#[test]
fn sparse_output_assembly_parity() {
    for g in finch_bench::figs_output_groups(96, 0.08, 13) {
        let mut dense_results = Vec::new();
        for mut v in g.variants {
            let tw_stats = v.kernel.run_with(Engine::TreeWalk).expect("tree-walk runs");
            let tw_tensor = v.kernel.output_tensor("C").expect("tree-walk output finalizes");
            let bc_stats = v.kernel.run_with(Engine::Bytecode).expect("bytecode runs");
            let bc_tensor = v.kernel.output_tensor("C").expect("bytecode output finalizes");
            assert_eq!(tw_stats, bc_stats, "{}: work counters diverge", v.label);
            assert_eq!(tw_tensor, bc_tensor, "{}: assembled levels diverge", v.label);
            let bits: Vec<(u64, u64)> = tw_tensor
                .values()
                .iter()
                .zip(bc_tensor.values())
                .map(|(a, b)| (a.to_bits(), b.to_bits()))
                .collect();
            assert!(bits.iter().all(|(a, b)| a == b), "{}: values are not bit-identical", v.label);
            dense_results.push(bc_tensor.to_dense());
        }
        // The sparse-output variant materialises to the dense-output run.
        assert_eq!(dense_results[0], dense_results[1], "{}: formats disagree", g.group);
    }
}

/// Every example kernel shape, differential-tested across every opt level
/// and both engines: outputs bit-identical for all (level, engine)
/// combinations, work counters identical across engines at each level.
#[test]
fn opt_levels_preserve_outputs_across_kernel_shapes() {
    let a_data = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
    let b_data = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::band_vector("B", &b_data);
    let k = common::dot_kernel(&a, &b, Protocol::Default, Protocol::Default);
    common::assert_opt_level_parity(&k, "dot list x band");

    let bl = Tensor::sparse_list_vector("B", &b_data);
    let k = common::dot_kernel(&a, &bl, Protocol::Gallop, Protocol::Gallop);
    common::assert_opt_level_parity(&k, "galloping dot");

    let n = 32;
    let dense_a = datagen::scientific_matrix(n, 2, 4, 0.004, 42);
    let xv = datagen::counted_sparse_vector(n, 6, 9);
    let am = Tensor::csr_matrix("A", n, n, &dense_a);
    let x = Tensor::sparse_list_vector("x", &xv);
    let k = common::spmspv_kernel(&am, &x, Protocol::Walk, Protocol::Walk);
    common::assert_opt_level_parity(&k, "spmspv");

    let size = 12;
    let grid = datagen::sparse_grid(size, size, 0.12, 77);
    let filter: Vec<f64> = (0..9).map(|v| 0.5 + (v % 5) as f64 * 0.1).collect();
    let k = finch_bench::conv_kernel(&grid, size, 3, &filter, true);
    common::assert_opt_level_parity(&k, "masked sparse convolution");

    let fg = datagen::stroke_image(16, 3, 5);
    let bg = datagen::stroke_image(16, 2, 6);
    let k = finch_bench::blend_kernel(
        &Tensor::rle_matrix("B", 16, 16, &fg),
        &Tensor::rle_matrix("Cimg", 16, 16, &bg),
        0.6,
        0.4,
    );
    common::assert_opt_level_parity(&k, "RLE alpha blend");
}

/// Sparse output assembly across opt levels: the assembled `pos`/`idx`/
/// `val` arrays (not just the dense materialisation) must be identical at
/// every level on both engines.
#[test]
fn opt_levels_preserve_sparse_output_assembly() {
    use looplets_repro::finch::OptLevel;
    for g in finch_bench::figs_output_groups(96, 0.08, 13) {
        for v in g.variants {
            let mut reference = None;
            for level in OptLevel::all() {
                let mut k = v.kernel.reoptimized(level);
                for engine in [Engine::TreeWalk, Engine::Bytecode] {
                    k.run_with(engine).expect("kernel runs");
                    let t = k.output_tensor("C").expect("output finalizes");
                    match &reference {
                        None => reference = Some(t),
                        Some(r) => assert_eq!(
                            r, &t,
                            "{}: assembly diverges at {level} on {engine:?}",
                            v.label
                        ),
                    }
                }
            }
        }
    }
}

/// A step budget interrupts both engines at the same statement count.
#[test]
fn step_budget_trips_identically_on_both_engines() {
    let a = Tensor::dense_vector("A", &vec![1.0; 128]);
    let b = Tensor::dense_vector("B", &vec![2.0; 128]);
    let mut k =
        common::dot_kernel(&a, &b, Protocol::Default, Protocol::Default).with_step_budget(50);
    let tw = k.run_with(Engine::TreeWalk).unwrap_err();
    let bc = k.run_with(Engine::Bytecode).unwrap_err();
    assert_eq!(format!("{tw}"), format!("{bc}"));
}
