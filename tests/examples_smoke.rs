//! Smoke test for the workspace wiring: every example under `examples/`
//! must build and run via the `looplets_repro::finch` / `::baseline` facade,
//! so a missing re-export (or a broken example) fails this test instead of
//! regressing silently.

use std::process::Command;

/// Each example plus a marker string its stdout must contain.
const EXAMPLES: &[(&str, &str)] = &[
    ("quickstart", "dot product"),
    ("galloping", "fewer positions than the two-finger merge"),
    ("spmspv", "two-finger merge (native)"),
    ("convolution", "masked sparse convolution"),
    ("image_blend", "all-pairs similarity"),
    ("sparse_output", "chained reduction over the assembled output"),
    ("serve", "service stats:"),
];

#[test]
fn every_example_runs_and_prints_its_result() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for (name, marker) in EXAMPLES {
        let out = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn `cargo run --example {name}`: {e}"));
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "example `{name}` exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
            out.status.code()
        );
        assert!(
            stdout.contains(marker),
            "example `{name}` ran but its output is missing {marker:?}\n--- stdout ---\n{stdout}"
        );
    }
}
