//! Experiment E8 (paper Figure 3): every level format can be iterated by
//! the compiler and produces exactly the same values as the dense
//! reference, both on its own (a reduction) and when coiterated with other
//! formats (a dot product / SpMV).

mod common;

use common::{assert_close, dot_kernel, spmspv_kernel};
use looplets_repro::baseline::kernels::{dot_dense, spmv_dense};
use looplets_repro::finch::build::*;
use looplets_repro::finch::{Kernel, Protocol, Tensor};

/// The clustered example data of the paper's Figure 1c / Figure 3.
fn sample_vector() -> Vec<f64> {
    vec![0.0, 1.9, 0.0, 3.0, 2.7, 0.0, 0.0, 0.0, 5.5, 0.0, 0.0]
}

fn banded_vector() -> Vec<f64> {
    vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0]
}

fn repeated_vector() -> Vec<f64> {
    vec![3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 2.0, 2.0, 5.0, 2.0, 4.0]
}

fn vector_formats(data: &[f64]) -> Vec<Tensor> {
    vec![
        Tensor::dense_vector("V", data),
        Tensor::sparse_list_vector("V", data),
        Tensor::vbl_vector("V", data),
        Tensor::band_vector("V", data),
        Tensor::rle_vector("V", data),
        Tensor::packbits_vector("V", data),
        Tensor::bitmap_vector("V", data),
    ]
}

#[test]
fn every_vector_format_sums_to_the_dense_total() {
    for data in [sample_vector(), banded_vector(), repeated_vector()] {
        let expect: f64 = data.iter().sum();
        for t in vector_formats(&data) {
            let mut kernel = Kernel::new();
            kernel.bind_input(&t).bind_output_scalar("S");
            let i = idx("i");
            let program = forall(i.clone(), add_assign(scalar("S"), access("V", [i])));
            let mut compiled = kernel.compile(&program).unwrap_or_else(|e| {
                panic!("sum over {} failed to compile: {e}", t.levels()[0].format_name())
            });
            compiled.run().expect("sum runs");
            let got = compiled.output_scalar("S").unwrap();
            assert!(
                (got - expect).abs() < 1e-9,
                "sum over {} format: got {got}, expected {expect}\n{}",
                t.levels()[0].format_name(),
                compiled.code()
            );
        }
    }
}

#[test]
fn every_pair_of_vector_formats_coiterates_correctly() {
    let a_data = sample_vector();
    let b_data = banded_vector();
    let expect = dot_dense(&a_data, &b_data);
    for a in vector_formats(&a_data) {
        let a = a.with_name("A");
        for b in vector_formats(&b_data) {
            let b = b.with_name("B");
            let mut k = dot_kernel(&a, &b, Protocol::Default, Protocol::Default);
            k.run().expect("dot runs");
            let got = k.output_scalar("C").unwrap();
            assert!(
                (got - expect).abs() < 1e-9,
                "dot of {} x {}: got {got}, expected {expect}\n{}",
                a.levels()[0].format_name(),
                b.levels()[0].format_name(),
                k.code()
            );
        }
    }
}

#[test]
fn protocol_choices_do_not_change_results() {
    let a_data = sample_vector();
    let b_data = banded_vector();
    let expect = dot_dense(&a_data, &b_data);
    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::sparse_list_vector("B", &b_data);
    for pa in [Protocol::Walk, Protocol::Gallop] {
        for pb in [Protocol::Walk, Protocol::Gallop, Protocol::Locate] {
            let mut k = dot_kernel(&a, &b, pa, pb);
            k.run().expect("dot runs");
            let got = k.output_scalar("C").unwrap();
            assert!(
                (got - expect).abs() < 1e-9,
                "dot with protocols {pa:?} x {pb:?}: got {got}, expected {expect}\n{}",
                k.code()
            );
        }
    }
}

#[test]
fn matrix_formats_spmv_matches_dense_reference() {
    let nrows = 9;
    let ncols = 11;
    // Build a clustered matrix by stacking shifted copies of the sample rows.
    let mut data = Vec::new();
    for r in 0..nrows {
        let src = if r % 3 == 0 {
            sample_vector()
        } else if r % 3 == 1 {
            banded_vector()
        } else {
            vec![0.0; ncols]
        };
        data.extend(src.iter().map(|&v| v * (r as f64 + 1.0)));
    }
    let xv: Vec<f64> = (0..ncols).map(|c| if c % 2 == 0 { c as f64 * 0.5 } else { 0.0 }).collect();
    let expect = spmv_dense(nrows, ncols, &data, &xv);

    let matrices = vec![
        Tensor::dense_matrix("A", nrows, ncols, &data),
        Tensor::csr_matrix("A", nrows, ncols, &data),
        Tensor::vbl_matrix("A", nrows, ncols, &data),
        Tensor::band_matrix("A", nrows, ncols, &data),
        Tensor::rle_matrix("A", nrows, ncols, &data),
        Tensor::packbits_matrix("A", nrows, ncols, &data),
        Tensor::bitmap_matrix("A", nrows, ncols, &data),
        Tensor::ragged_matrix("A", nrows, ncols, &data),
    ];
    let x_formats = vec![
        Tensor::dense_vector("x", &xv),
        Tensor::sparse_list_vector("x", &xv),
        Tensor::rle_vector("x", &xv),
    ];
    for a in &matrices {
        for x in &x_formats {
            let mut k = spmspv_kernel(a, x, Protocol::Default, Protocol::Default);
            k.run().expect("spmv runs");
            let y = k.output("y").unwrap();
            assert_close(
                &y,
                &expect,
                &format!(
                    "spmv over {} x {}",
                    a.levels()[1].format_name(),
                    x.levels()[0].format_name()
                ),
            );
        }
    }
}

#[test]
fn triangular_and_symmetric_formats_reduce_correctly() {
    let n = 6;
    let mut lower = vec![0.0; n * n];
    let mut sym = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..=r {
            let v = ((r * 7 + c * 3) % 5) as f64;
            lower[r * n + c] = v;
            sym[r * n + c] = v;
            sym[c * n + r] = v;
        }
    }
    let cases = vec![
        (Tensor::triangular_matrix("A", n, &lower), lower.clone()),
        (Tensor::symmetric_matrix("A", n, &sym), sym.clone()),
    ];
    for (t, dense) in cases {
        let xv: Vec<f64> = (0..n).map(|c| c as f64 + 1.0).collect();
        let x = Tensor::dense_vector("x", &xv);
        let expect = spmv_dense(n, n, &dense, &xv);
        let mut k = spmspv_kernel(&t, &x, Protocol::Default, Protocol::Default);
        k.run().expect("spmv runs");
        assert_close(
            &k.output("y").unwrap(),
            &expect,
            &format!("spmv over {}", t.levels()[1].format_name()),
        );
    }
}
