//! The paper's evaluation kernels (Figures 7, 8, 10 and 11), each checked
//! against the native reference implementations in `finch-baseline`.

mod common;

use common::{all_pairs_kernel, assert_close, blend_kernel, spmspv_kernel, triangle_kernel};
use looplets_repro::baseline::datagen;
use looplets_repro::baseline::kernels::{
    all_pairs_similarity_dense, alpha_blend_dense, spmv_dense, triangles_two_finger, CsrMatrix,
};
use looplets_repro::finch::{Protocol, Tensor};

#[test]
fn spmspv_all_strategies_match_the_dense_oracle() {
    let n = 48;
    let dense_a = datagen::scientific_matrix(n, 2, 3, 0.01, 41);
    let xv = datagen::random_sparse_vector(n, 0.2, 42);
    let expect = spmv_dense(n, n, &dense_a, &xv);

    let strategies: Vec<(&str, Tensor, Protocol, Protocol)> = vec![
        ("csr-follower", Tensor::csr_matrix("A", n, n, &dense_a), Protocol::Walk, Protocol::Walk),
        ("csr-leader", Tensor::csr_matrix("A", n, n, &dense_a), Protocol::Gallop, Protocol::Walk),
        (
            "csr-gallop-both",
            Tensor::csr_matrix("A", n, n, &dense_a),
            Protocol::Gallop,
            Protocol::Gallop,
        ),
        ("vbl", Tensor::vbl_matrix("A", n, n, &dense_a), Protocol::Walk, Protocol::Walk),
        (
            "dense-locate",
            Tensor::dense_matrix("A", n, n, &dense_a),
            Protocol::Locate,
            Protocol::Walk,
        ),
    ];
    let x_sparse = Tensor::sparse_list_vector("x", &xv);
    for (name, a, pa, px) in strategies {
        let mut k = spmspv_kernel(&a, &x_sparse, pa, px);
        k.run().unwrap_or_else(|e| panic!("{name} failed to run: {e}\n{}", k.code()));
        assert_close(&k.output("y").unwrap(), &expect, name);
    }
}

#[test]
fn spmspv_with_very_sparse_x_skips_most_of_the_matrix() {
    // Figure 7b's situation: x has a constant number of nonzeros, so a
    // strategy that leads with x (or can randomly access A's rows) should do
    // much less work than scanning all of A.
    let n = 96;
    let dense_a = datagen::scientific_matrix(n, 2, 2, 0.01, 43);
    let xv = datagen::counted_sparse_vector(n, 4, 44);
    let expect = spmv_dense(n, n, &dense_a, &xv);
    let x = Tensor::sparse_list_vector("x", &xv);

    let a_walk = Tensor::csr_matrix("A", n, n, &dense_a);
    let mut follower = spmspv_kernel(&a_walk, &x, Protocol::Walk, Protocol::Walk);
    let follower_stats = follower.run().expect("follower runs");
    assert_close(&follower.output("y").unwrap(), &expect, "follower");

    let a_gallop = Tensor::csr_matrix("A", n, n, &dense_a);
    let mut gallop = spmspv_kernel(&a_gallop, &x, Protocol::Gallop, Protocol::Gallop);
    let gallop_stats = gallop.run().expect("gallop runs");
    assert_close(&gallop.output("y").unwrap(), &expect, "gallop");

    assert!(
        gallop_stats.loop_iters < follower_stats.loop_iters,
        "galloping should visit fewer positions when x is very sparse: {} vs {}",
        gallop_stats.loop_iters,
        follower_stats.loop_iters
    );
}

#[test]
fn triangle_counting_matches_the_merge_oracle() {
    let n = 40;
    let adj = datagen::power_law_graph(n, 3, 45);
    let csr = CsrMatrix::from_dense(n, n, &adj);
    let (expect, _) = triangles_two_finger(&csr);

    let a = Tensor::csr_matrix("A", n, n, &adj);
    let a2 = Tensor::csr_matrix("A2", n, n, &adj);
    let at = Tensor::csr_matrix("At", n, n, &csr.transpose().to_dense());

    for gallop in [false, true] {
        let mut k = triangle_kernel(&a, &a2, &at, gallop);
        k.run().unwrap_or_else(|e| panic!("triangle kernel failed: {e}\n{}", k.code()));
        let got = k.output_scalar("C").unwrap();
        assert!(
            (got - expect).abs() < 1e-9,
            "triangles (gallop={gallop}): got {got}, expected {expect}"
        );
    }
}

#[test]
fn alpha_blending_matches_the_dense_oracle_across_formats() {
    let size = 24;
    let b_img = datagen::stroke_image(size, 2, 46);
    let c_img = datagen::stroke_image(size, 3, 47);
    let (alpha, beta) = (0.6, 0.4);
    let expect = alpha_blend_dense(&b_img, &c_img, alpha, beta);

    let cases: Vec<(&str, Tensor, Tensor)> = vec![
        (
            "dense",
            Tensor::dense_matrix("B", size, size, &b_img),
            Tensor::dense_matrix("Cimg", size, size, &c_img),
        ),
        (
            "sparse-list",
            Tensor::csr_matrix("B", size, size, &b_img),
            Tensor::csr_matrix("Cimg", size, size, &c_img),
        ),
        (
            "rle",
            Tensor::rle_matrix("B", size, size, &b_img),
            Tensor::rle_matrix("Cimg", size, size, &c_img),
        ),
        (
            "packbits",
            Tensor::packbits_matrix("B", size, size, &b_img),
            Tensor::packbits_matrix("Cimg", size, size, &c_img),
        ),
    ];
    for (name, b, c) in cases {
        let mut k = blend_kernel(&b, &c, alpha, beta);
        k.run().unwrap_or_else(|e| panic!("blend {name} failed to run: {e}"));
        assert_close(&k.output("A").unwrap(), &expect, &format!("alpha blend over {name}"));
    }
}

#[test]
fn rle_blending_of_flat_images_does_less_work_than_dense() {
    // Two images that are mostly flat: RLE processes runs, the dense kernel
    // processes pixels.
    let size = 32;
    let mut b_img = vec![10.0; size * size];
    let mut c_img = vec![200.0; size * size];
    for k in 0..size {
        b_img[k * size + k] = 55.0;
        c_img[k * size + (size - 1 - k)] = 77.0;
    }
    let expect = alpha_blend_dense(&b_img, &c_img, 0.5, 0.5);

    let dense_b = Tensor::dense_matrix("B", size, size, &b_img);
    let dense_c = Tensor::dense_matrix("Cimg", size, size, &c_img);
    let mut dense_kernel = blend_kernel(&dense_b, &dense_c, 0.5, 0.5);
    let dense_stats = dense_kernel.run().expect("dense blend runs");
    assert_close(&dense_kernel.output("A").unwrap(), &expect, "dense blend");

    let rle_b = Tensor::rle_matrix("B", size, size, &b_img);
    let rle_c = Tensor::rle_matrix("Cimg", size, size, &c_img);
    let mut rle_kernel = blend_kernel(&rle_b, &rle_c, 0.5, 0.5);
    let rle_stats = rle_kernel.run().expect("rle blend runs");
    assert_close(&rle_kernel.output("A").unwrap(), &expect, "rle blend");

    // NOTE: the output is still written densely, so the win shows up in
    // loads (input traffic), not in stores.
    assert!(
        rle_stats.loads < dense_stats.loads,
        "RLE blending should read fewer values: {} vs {}",
        rle_stats.loads,
        dense_stats.loads
    );
}

#[test]
fn all_pairs_similarity_matches_the_dense_oracle() {
    let count = 6;
    let size = 12;
    let batch = datagen::image_batch(count, size, 48, datagen::blob_image);
    let m = size * size;
    let expect = all_pairs_similarity_dense(count, m, &batch);

    for (name, a, a2) in [
        (
            "sparse-list",
            Tensor::csr_matrix("A", count, m, &batch),
            Tensor::csr_matrix("A2", count, m, &batch),
        ),
        (
            "vbl",
            Tensor::vbl_matrix("A", count, m, &batch),
            Tensor::vbl_matrix("A2", count, m, &batch),
        ),
        (
            "rle",
            Tensor::rle_matrix("A", count, m, &batch),
            Tensor::rle_matrix("A2", count, m, &batch),
        ),
    ] {
        let mut k = all_pairs_kernel(&a, &a2);
        k.run().unwrap_or_else(|e| panic!("all-pairs {name} failed to run: {e}"));
        assert_close(&k.output("O").unwrap(), &expect, &format!("all-pairs over {name}"));
    }
}
