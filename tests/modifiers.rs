//! Index modifiers (paper §8): windowing, shifting (`offset`), padding
//! (`permit`), concatenation and convolution over structured inputs, plus
//! the `sieve` statement.

mod common;

use common::assert_close;
use looplets_repro::baseline::datagen;
use looplets_repro::baseline::kernels::conv2d_dense_masked;
use looplets_repro::finch::build::*;
use looplets_repro::finch::{CinExpr, Kernel, Tensor};

#[test]
fn window_sums_a_slice() {
    let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
    let a = Tensor::sparse_list_vector("A", &data);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_output_scalar("S");
    let k = idx("k");
    // S += A[window(2, 4)[k]]  for k in 0..=2, i.e. A[2] + A[3] + A[4].
    let program = forall_in(
        k.clone(),
        lit_int(0),
        lit_int(2),
        add_assign(scalar("S"), access("A", [k.walk().window(lit_int(2), lit_int(4))])),
    );
    let mut compiled = kernel.compile(&program).expect("window kernel compiles");
    compiled.run().expect("window kernel runs");
    assert_eq!(compiled.output_scalar("S").unwrap(), 3.0 + 4.0 + 5.0);
}

#[test]
fn offset_shifts_the_coordinate_system() {
    let data = vec![10.0, 20.0, 30.0, 40.0];
    let a = Tensor::dense_vector("A", &data);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_output("y", &[2], 0.0);
    let i = idx("i");
    // y[i] = A[offset(-2)[i]] = A[i + 2]  for i in 0..=1.
    let program = forall_in(
        i.clone(),
        lit_int(0),
        lit_int(1),
        assign(access("y", [i.clone()]), access("A", [i.walk().offset(lit_int(-2))])),
    );
    let mut compiled = kernel.compile(&program).expect("offset kernel compiles");
    compiled.run().expect("offset kernel runs");
    assert_eq!(compiled.output("y").unwrap(), vec![30.0, 40.0]);
}

#[test]
fn permit_reads_out_of_bounds_as_missing() {
    let data = vec![5.0, 7.0];
    let a = Tensor::sparse_list_vector("A", &data);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_output("y", &[4], 0.0);
    let i = idx("i");
    // y[i] = coalesce(A[permit[offset(1)[i]]], -1)  for i in 0..=3:
    // reads A[i - 1], so out-of-bounds positions take the default -1.
    let program = forall_in(
        i.clone(),
        lit_int(0),
        lit_int(3),
        assign(
            access("y", [i.clone()]),
            coalesce(vec![access("A", [i.walk().offset(lit_int(1)).permit()]).into(), lit(-1.0)]),
        ),
    );
    let mut compiled = kernel.compile(&program).expect("permit kernel compiles");
    compiled.run().expect("permit kernel runs");
    assert_eq!(compiled.output("y").unwrap(), vec![-1.0, 5.0, 7.0, -1.0]);
}

#[test]
fn concatenation_via_permit_and_offset() {
    // C[i] = coalesce(A[permit[i]], B[permit[offset(|A|)[i]]])   (paper §8)
    let a_data = vec![1.0, 0.0, 3.0];
    let b_data = vec![7.0, 8.0];
    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::sparse_list_vector("B", &b_data);
    let total = a_data.len() + b_data.len();
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&b).bind_output("C", &[total], 0.0);
    let i = idx("i");
    let program = forall_in(
        i.clone(),
        lit_int(0),
        lit_int(total as i64 - 1),
        assign(
            access("C", [i.clone()]),
            coalesce(vec![
                access("A", [i.walk().permit()]).into(),
                access("B", [i.walk().offset(lit_int(a_data.len() as i64)).permit()]).into(),
                lit(0.0),
            ]),
        ),
    );
    let mut compiled = kernel.compile(&program).expect("concat kernel compiles");
    compiled.run().expect("concat kernel runs");
    let expect: Vec<f64> = a_data.iter().chain(b_data.iter()).copied().collect();
    assert_eq!(compiled.output("C").unwrap(), expect);
}

#[test]
fn one_dimensional_convolution_over_a_sparse_input() {
    // B[i] += coalesce(A[permit[offset(1 - i)[j]]], 0) * F[j]
    // with a length-3 filter: B[i] = Σ_j A[i + j - 1] * F[j].
    let a_data = vec![0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 1.0, 0.0];
    let f_data = vec![1.0, 10.0, 100.0];
    let n = a_data.len();
    let a = Tensor::sparse_list_vector("A", &a_data);
    let f = Tensor::dense_vector("F", &f_data);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&f).bind_output("B", &[n], 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let a_index = j.walk().offset(sub(lit_int(1), CinExpr::Index(i.clone()))).permit();
    let program = forall(
        i.clone(),
        forall_in(
            j.clone(),
            lit_int(0),
            lit_int(2),
            add_assign(
                access("B", [i.clone()]),
                mul(coalesce(vec![access("A", [a_index]).into(), lit(0.0)]), access("F", [j])),
            ),
        ),
    );
    let mut compiled = kernel.compile(&program).expect("1d conv compiles");
    compiled.run().expect("1d conv runs");
    let got = compiled.output("B").unwrap();
    let expect: Vec<f64> = (0..n as isize)
        .map(|i| {
            (0..3isize)
                .map(|j| {
                    let p = i + j - 1;
                    if p >= 0 && p < n as isize {
                        a_data[p as usize] * f_data[j as usize]
                    } else {
                        0.0
                    }
                })
                .sum()
        })
        .collect();
    assert_close(&got, &expect, "1d convolution");
}

#[test]
fn masked_two_dimensional_convolution_matches_the_oracle() {
    // The paper's Figure 9 kernel (3×3 filter on a small grid):
    // C[i,k] += (A[i,k] != 0) * coalesce(A[...offset...permit...], 0)
    //                         * coalesce(F[permit[j], permit[l]], 0)
    let size = 10;
    let grid = datagen::sparse_grid(size, size, 0.15, 77);
    let filter: Vec<f64> = (0..9).map(|v| (v as f64) * 0.25 + 0.5).collect();
    let expect = conv2d_dense_masked(size, size, &grid, 3, &filter);

    let a = Tensor::csr_matrix("A", size, size, &grid);
    let aw = Tensor::csr_matrix("Aw", size, size, &grid);
    let f = Tensor::dense_matrix("F", 3, 3, &filter);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&aw).bind_input(&f).bind_output("C", &[size, size], 0.0);

    let (i, k, j, l) = (idx("i"), idx("k"), idx("j"), idx("l"));
    let row_index = j.walk().offset(sub(lit_int(1), CinExpr::Index(i.clone()))).permit();
    let col_index = l.walk().offset(sub(lit_int(1), CinExpr::Index(k.clone()))).permit();
    let program = forall(
        i.clone(),
        forall(
            k.clone(),
            forall_in(
                j.clone(),
                lit_int(0),
                lit_int(2),
                forall_in(
                    l.clone(),
                    lit_int(0),
                    lit_int(2),
                    add_assign(
                        access("C", [i.clone(), k.clone()]),
                        mul3(
                            nonzero_mask(access("A", [i.clone(), k.clone()])),
                            coalesce(vec![access("Aw", [row_index, col_index]).into(), lit(0.0)]),
                            access("F", [j, l]),
                        ),
                    ),
                ),
            ),
        ),
    );
    let mut compiled = kernel.compile(&program).expect("2d conv compiles");
    compiled.run().expect("2d conv runs");
    assert_close(&compiled.output("C").unwrap(), &expect, "masked 2d convolution");
}

#[test]
fn sieve_statements_guard_scatter_like_updates() {
    // Count the entries of A larger than 2 using a sieve.
    let data = vec![1.0, 3.0, 0.0, 5.0, 2.0, 7.0];
    let a = Tensor::dense_vector("A", &data);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_output_scalar("count");
    let i = idx("i");
    let program = forall(
        i.clone(),
        sieve(
            CinExpr::call(
                looplets_repro::finch::CinOp::Gt,
                vec![access("A", [i]).into(), lit(2.0)],
            ),
            add_assign(scalar("count"), lit(1.0)),
        ),
    );
    let mut compiled = kernel.compile(&program).expect("sieve kernel compiles");
    compiled.run().expect("sieve kernel runs");
    assert_eq!(compiled.output_scalar("count").unwrap(), 3.0);
}

#[test]
fn convolution_work_scales_with_input_sparsity() {
    // The asymptotic claim behind Figure 9: the masked sparse convolution
    // does work proportional to the number of nonzero inputs.
    let size = 24;
    let sparse = datagen::sparse_grid(size, size, 0.02, 5);
    let denser = datagen::sparse_grid(size, size, 0.30, 5);
    let filter = vec![1.0; 9];

    let run = |grid: &[f64]| {
        let a = Tensor::csr_matrix("A", size, size, grid);
        let aw = Tensor::csr_matrix("Aw", size, size, grid);
        let f = Tensor::dense_matrix("F", 3, 3, &filter);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_input(&aw).bind_input(&f).bind_output("C", &[size, size], 0.0);
        let (i, k, j, l) = (idx("i"), idx("k"), idx("j"), idx("l"));
        let row_index = j.walk().offset(sub(lit_int(1), CinExpr::Index(i.clone()))).permit();
        let col_index = l.walk().offset(sub(lit_int(1), CinExpr::Index(k.clone()))).permit();
        let program = forall(
            i.clone(),
            forall(
                k.clone(),
                forall_in(
                    j.clone(),
                    lit_int(0),
                    lit_int(2),
                    forall_in(
                        l.clone(),
                        lit_int(0),
                        lit_int(2),
                        add_assign(
                            access("C", [i.clone(), k.clone()]),
                            mul3(
                                nonzero_mask(access("A", [i.clone(), k.clone()])),
                                coalesce(vec![
                                    access("Aw", [row_index, col_index]).into(),
                                    lit(0.0),
                                ]),
                                access("F", [j, l]),
                            ),
                        ),
                    ),
                ),
            ),
        );
        let mut compiled = kernel.compile(&program).expect("conv compiles");
        let stats = compiled.run().expect("conv runs");
        stats.total_work()
    };
    let sparse_work = run(&sparse);
    let dense_work = run(&denser);
    assert!(
        sparse_work * 3 < dense_work,
        "sparser input should do much less work: {sparse_work} vs {dense_work}"
    );
}
