//! Property-based tests: for arbitrary data, every format stores the data
//! faithfully and every compiled coiteration agrees with a dense oracle.

mod common;

use common::{assert_engine_parity, assert_opt_level_parity, dot_kernel, spmspv_kernel};
use looplets_repro::baseline::kernels::{dot_dense, spmv_dense};
use looplets_repro::finch::build::*;
use looplets_repro::finch::{Kernel, LevelSpec, Protocol, Tensor};
use proptest::prelude::*;

/// A vector with a controlled mix of zeros, repeated values and arbitrary
/// values, so every format has something to compress.
fn structured_vector(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(0.0),
            2 => Just(1.5),
            2 => (1i32..100).prop_map(|x| x as f64 / 4.0),
        ],
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vector_formats_roundtrip_arbitrary_data(data in structured_vector(64)) {
        let candidates = vec![
            Tensor::sparse_list_vector("V", &data),
            Tensor::vbl_vector("V", &data),
            Tensor::band_vector("V", &data),
            Tensor::rle_vector("V", &data),
            Tensor::packbits_vector("V", &data),
            Tensor::bitmap_vector("V", &data),
        ];
        for t in candidates {
            prop_assert_eq!(t.to_dense(), data.clone(), "format {}", t.levels()[0].format_name());
        }
    }

    #[test]
    fn matrix_formats_roundtrip_arbitrary_data(
        data in structured_vector(60),
        ncols in 1usize..12,
    ) {
        let ncols = ncols.min(data.len());
        let nrows = data.len() / ncols;
        let data = &data[..nrows * ncols];
        if nrows == 0 {
            return Ok(());
        }
        let candidates = vec![
            Tensor::csr_matrix("A", nrows, ncols, data),
            Tensor::vbl_matrix("A", nrows, ncols, data),
            Tensor::band_matrix("A", nrows, ncols, data),
            Tensor::rle_matrix("A", nrows, ncols, data),
            Tensor::packbits_matrix("A", nrows, ncols, data),
            Tensor::bitmap_matrix("A", nrows, ncols, data),
            Tensor::ragged_matrix("A", nrows, ncols, data),
        ];
        for t in candidates {
            prop_assert_eq!(t.to_dense(), data.to_vec(), "format {}", t.levels()[1].format_name());
        }
    }

    #[test]
    fn compiled_dot_products_agree_with_dense_for_any_data(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let expect = dot_dense(a_data, b_data);
        let a_formats = vec![
            Tensor::sparse_list_vector("A", a_data),
            Tensor::vbl_vector("A", a_data),
            Tensor::rle_vector("A", a_data),
        ];
        let b_formats = vec![
            Tensor::sparse_list_vector("B", b_data),
            Tensor::band_vector("B", b_data),
            Tensor::bitmap_vector("B", b_data),
        ];
        for a in &a_formats {
            for b in &b_formats {
                let mut k = dot_kernel(a, b, Protocol::Default, Protocol::Default);
                k.run().expect("dot runs");
                let got = k.output_scalar("C").unwrap();
                prop_assert!(
                    (got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                    "dot {} x {}: got {got}, expected {expect}",
                    a.levels()[0].format_name(),
                    b.levels()[0].format_name()
                );
            }
        }
    }

    #[test]
    fn compiled_gallop_agrees_with_walk_for_any_data(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let expect = dot_dense(a_data, b_data);
        let a = Tensor::sparse_list_vector("A", a_data);
        let b = Tensor::sparse_list_vector("B", b_data);
        for (pa, pb) in [
            (Protocol::Gallop, Protocol::Walk),
            (Protocol::Walk, Protocol::Gallop),
            (Protocol::Gallop, Protocol::Gallop),
        ] {
            let mut k = dot_kernel(&a, &b, pa, pb);
            k.run().expect("dot runs");
            let got = k.output_scalar("C").unwrap();
            prop_assert!(
                (got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "protocols {pa:?} x {pb:?}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn engines_are_bit_identical_for_any_dot_kernel(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a_formats = vec![
            Tensor::sparse_list_vector("A", a_data),
            Tensor::rle_vector("A", a_data),
            Tensor::packbits_vector("A", a_data),
        ];
        let b_formats = vec![
            Tensor::band_vector("B", b_data),
            Tensor::bitmap_vector("B", b_data),
            Tensor::vbl_vector("B", b_data),
        ];
        for a in &a_formats {
            for b in &b_formats {
                for (pa, pb) in [
                    (Protocol::Default, Protocol::Default),
                    (Protocol::Gallop, Protocol::Walk),
                ] {
                    let mut k = dot_kernel(a, b, pa, pb);
                    assert_engine_parity(
                        &mut k,
                        &format!(
                            "dot {} x {} ({pa:?}/{pb:?})",
                            a.levels()[0].format_name(),
                            b.levels()[0].format_name()
                        ),
                    );
                }
            }
        }
    }

    /// Round-trip random sparse-output kernels: assemble a `SparseList`
    /// output, re-bind the finalized tensor as the input of an
    /// identity-copy kernel, and compare the copy against the dense oracle.
    #[test]
    fn sparse_outputs_roundtrip_through_an_identity_copy(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a = Tensor::sparse_list_vector("A", a_data);
        let b = Tensor::sparse_list_vector("B", b_data);

        // C[i] = A[i] * B[i], assembled as a sparse list.
        let mut kernel = Kernel::new();
        kernel
            .bind_input(&a)
            .bind_input(&b)
            .bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
        let i = idx("i");
        let program = forall(
            i.clone(),
            assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
        );
        let mut k = kernel.compile(&program).expect("sparse multiply compiles");
        assert_engine_parity(&mut k, "sparse-output multiply");
        let c = k.output_tensor("C").expect("sparse output finalizes");

        let oracle: Vec<f64> = a_data.iter().zip(b_data).map(|(x, y)| x * y).collect();
        prop_assert_eq!(c.to_dense(), oracle.clone(), "assembled tensor");
        prop_assert_eq!(c.stored(), oracle.iter().filter(|&&v| v != 0.0).count());

        // Identity copy: re-bind the assembled tensor as an input.
        let mut copy = Kernel::new();
        copy.bind_input(&c).bind_output("D", &[n], 0.0);
        let i = idx("i");
        let program = forall(i.clone(), assign(access("D", [i.clone()]), access("C", [i])));
        let mut ck = copy.compile(&program).expect("identity copy compiles");
        assert_engine_parity(&mut ck, "identity copy of a sparse output");
        prop_assert_eq!(ck.output("D").unwrap(), oracle, "copied result");
    }

    /// For random kernels, outputs are bit-identical across
    /// `OptLevel::None`, `Default` and `Aggressive` on both engines, and
    /// the engines agree on `ExecStats` exactly at every level.
    #[test]
    fn opt_levels_are_bit_identical_for_any_dot_kernel(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a_formats = vec![
            Tensor::sparse_list_vector("A", a_data),
            Tensor::rle_vector("A", a_data),
        ];
        let b_formats = vec![
            Tensor::band_vector("B", b_data),
            Tensor::bitmap_vector("B", b_data),
        ];
        for a in &a_formats {
            for b in &b_formats {
                for (pa, pb) in [
                    (Protocol::Default, Protocol::Default),
                    (Protocol::Gallop, Protocol::Walk),
                ] {
                    let k = dot_kernel(a, b, pa, pb);
                    assert_opt_level_parity(
                        &k,
                        &format!(
                            "dot {} x {} ({pa:?}/{pb:?})",
                            a.levels()[0].format_name(),
                            b.levels()[0].format_name()
                        ),
                    );
                }
            }
        }
    }

    #[test]
    fn opt_levels_are_bit_identical_for_any_spmv_kernel(
        data in structured_vector(72),
        xseed in structured_vector(12),
        ncols in 2usize..12,
    ) {
        let ncols = ncols.min(data.len());
        let nrows = data.len() / ncols;
        if nrows == 0 {
            return Ok(());
        }
        let data = &data[..nrows * ncols];
        let xv: Vec<f64> = (0..ncols).map(|c| xseed.get(c % xseed.len().max(1)).copied().unwrap_or(0.0)).collect();
        let x = Tensor::sparse_list_vector("x", &xv);
        for a in [
            Tensor::csr_matrix("A", nrows, ncols, data),
            Tensor::vbl_matrix("A", nrows, ncols, data),
        ] {
            let k = spmspv_kernel(&a, &x, Protocol::Default, Protocol::Default);
            assert_opt_level_parity(
                &k,
                &format!("spmv over {}", a.levels()[1].format_name()),
            );
        }
    }

    /// Random sparse-output kernels keep bit-identical assembled tensors
    /// across every opt level on both engines.
    #[test]
    fn opt_levels_preserve_random_sparse_outputs(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a = Tensor::sparse_list_vector("A", a_data);
        let b = Tensor::sparse_list_vector("B", b_data);
        let mut kernel = Kernel::new();
        kernel
            .bind_input(&a)
            .bind_input(&b)
            .bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
        let i = idx("i");
        let program = forall(
            i.clone(),
            assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
        );
        let k = kernel.compile(&program).expect("sparse multiply compiles");
        assert_opt_level_parity(&k, "sparse-output multiply");
    }

    /// Typed vs generic dispatch on random sparse-output kernels: the raw
    /// assembled `pos`/`idx`/`val` arrays and the `ExecStats` work
    /// counters must be bit-identical at every opt level, on both engines
    /// (tree-walk never sees typed bytecode, so it anchors both modes).
    #[test]
    fn typed_dispatch_preserves_assembled_sparse_outputs(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        use looplets_repro::finch::{Engine, Level, OptLevel};
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a = Tensor::sparse_list_vector("A", a_data);
        let b = Tensor::sparse_list_vector("B", b_data);
        let mut kernel = Kernel::new();
        kernel
            .bind_input(&a)
            .bind_input(&b)
            .bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
        let i = idx("i");
        let program = forall(
            i.clone(),
            assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
        );
        let k = kernel.compile(&program).expect("sparse multiply compiles");
        let raw_level = |k: &mut looplets_repro::finch::CompiledKernel| {
            let stats = k.run_with(Engine::Bytecode).expect("bytecode runs");
            let t = k.output_tensor("C").expect("sparse output finalizes");
            let (pos, idx, val) = match &t.levels()[0] {
                Level::SparseList { pos, idx, .. } => {
                    let bits: Vec<u64> = t.values().iter().map(|v| v.to_bits()).collect();
                    (pos.clone(), idx.clone(), bits)
                }
                other => panic!("expected a sparse list level, got {other:?}"),
            };
            (stats, pos, idx, val)
        };
        for level in OptLevel::all() {
            let mut typed = k.reoptimized_typed(level, true);
            let mut generic = k.reoptimized_typed(level, false);
            let t = raw_level(&mut typed);
            let g = raw_level(&mut generic);
            prop_assert_eq!(t, g, "typed vs generic diverge at {}", level);
        }
    }

    /// The SIMD kernel-op tier, end to end: compiled with **full
    /// translation validation**, random kernels mixing a dense map, a
    /// scalar reduction and a guarded sparse-output append produce
    /// bit-identical dense outputs, bit-identical assembled
    /// `pos`/`idx`/`val` arrays, and **exactly** equal `ExecStats` with
    /// the vectorize stage on and off, at every opt level.
    #[test]
    fn simd_kernel_ops_preserve_outputs_and_stats_under_validation(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        use looplets_repro::finch::{Engine, Level, OptLevel, ValidationLevel};
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a = Tensor::dense_vector("A", a_data);
        let b = Tensor::dense_vector("B", b_data);
        let mut kernel = Kernel::new();
        kernel
            .set_validation(ValidationLevel::Full)
            .bind_input(&a)
            .bind_input(&b)
            .bind_output("Y", &[n], 0.0)
            .bind_output_scalar("D")
            .bind_output_format("S", &[LevelSpec::SparseList { size: n }]);
        let i = idx("i");
        let program = multi(vec![
            // A dense scaled map (fuses to a bulk map kernel op).
            forall(
                i.clone(),
                add_assign(access("Y", [i.clone()]), mul(lit(0.75), access("A", [i.clone()]))),
            ),
            // A scalar dot reduction (fuses to a bulk multiply-add).
            forall(
                i.clone(),
                add_assign(scalar("D"), mul(access("A", [i.clone()]), access("B", [i.clone()]))),
            ),
            // A guarded sparse append (fuses to a guarded append range).
            forall(
                i.clone(),
                sieve(
                    gt(access("B", [i.clone()]), lit(0.5)),
                    assign(access("S", [i.clone()]), access("B", [i])),
                ),
            ),
        ]);
        let k = kernel.compile(&program).expect("validated compile succeeds");
        // Point loops unroll away entirely, so only multi-element inputs
        // are guaranteed to leave counted loops for the pass to fuse.
        if n >= 4 {
            let (vectorized, vectorizable) = k.instrs_vectorized();
            prop_assert!(vectorizable > 0, "the kernel has fusable counted loops");
            prop_assert!(vectorized > 0, "the vectorize stage fused at least one loop");
        }
        let snapshot = |k: &mut looplets_repro::finch::CompiledKernel| {
            let stats = k.run_with(Engine::Bytecode).expect("bytecode runs");
            let outputs: Vec<(String, Vec<u64>)> = k
                .output_names()
                .into_iter()
                .map(|name| {
                    let out = k.output(&name).expect("output reads");
                    (name, out.iter().map(|v| v.to_bits()).collect())
                })
                .collect();
            let t = k.output_tensor("S").expect("sparse output finalizes");
            let raw = match &t.levels()[0] {
                Level::SparseList { pos, idx, .. } => {
                    let bits: Vec<u64> = t.values().iter().map(|v| v.to_bits()).collect();
                    (pos.clone(), idx.clone(), bits)
                }
                other => panic!("expected a sparse list level, got {other:?}"),
            };
            (stats, outputs, raw)
        };
        for level in OptLevel::all() {
            let mut on = k.reoptimized_simd(level, true, true);
            let mut off = k.reoptimized_simd(level, true, false);
            prop_assert_eq!(on.validation(), ValidationLevel::Full);
            prop_assert_eq!(
                snapshot(&mut on),
                snapshot(&mut off),
                "simd on vs off diverge at {}",
                level
            );
        }
    }

    /// The DCE safety net, end to end: compiled with **full translation
    /// validation**, random sparse-output kernels keep bit-identical
    /// assembled `pos`/`idx`/`val` arrays between `OptLevel::None` and
    /// `OptLevel::Aggressive`.  Dead-code elimination may never delete an
    /// effectful `Append`/`FiberEnd` — if it did, the per-pass validator
    /// would already fail the compile naming `dce`, and this comparison
    /// would catch anything that slipped past it.
    #[test]
    fn dce_never_deletes_effectful_statements_under_validation(
        a_data in structured_vector(48),
        b_data in structured_vector(48),
    ) {
        use looplets_repro::finch::{Engine, Level, OptLevel, ValidationLevel};
        let n = a_data.len().min(b_data.len());
        let (a_data, b_data) = (&a_data[..n], &b_data[..n]);
        let a = Tensor::sparse_list_vector("A", a_data);
        let b = Tensor::sparse_list_vector("B", b_data);
        for op in ["mul", "add"] {
            let mut kernel = Kernel::new();
            kernel
                .set_validation(ValidationLevel::Full)
                .bind_input(&a)
                .bind_input(&b)
                .bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
            let i = idx("i");
            let lhs = access("A", [i.clone()]);
            let rhs = access("B", [i.clone()]);
            let body = if op == "mul" { mul(lhs, rhs) } else { add(lhs, rhs) };
            let program = forall(i.clone(), assign(access("C", [i]), body));
            let k = kernel.compile(&program).expect("validated compile succeeds");
            let raw_level = |k: &mut looplets_repro::finch::CompiledKernel| {
                k.run_with(Engine::Bytecode).expect("bytecode runs");
                let t = k.output_tensor("C").expect("sparse output finalizes");
                match &t.levels()[0] {
                    Level::SparseList { pos, idx, .. } => {
                        let bits: Vec<u64> = t.values().iter().map(|v| v.to_bits()).collect();
                        (pos.clone(), idx.clone(), bits)
                    }
                    other => panic!("expected a sparse list level, got {other:?}"),
                }
            };
            let mut unopt = k.reoptimized(OptLevel::None);
            let mut aggressive = k.reoptimized(OptLevel::Aggressive);
            prop_assert_eq!(unopt.validation(), ValidationLevel::Full);
            prop_assert_eq!(
                raw_level(&mut unopt),
                raw_level(&mut aggressive),
                "assembled pos/idx/val diverge between None and Aggressive ({op})"
            );
        }
    }

    #[test]
    fn engines_are_bit_identical_for_any_spmv_kernel(
        data in structured_vector(72),
        xseed in structured_vector(12),
        ncols in 2usize..12,
    ) {
        let ncols = ncols.min(data.len());
        let nrows = data.len() / ncols;
        if nrows == 0 {
            return Ok(());
        }
        let data = &data[..nrows * ncols];
        let xv: Vec<f64> = (0..ncols).map(|c| xseed.get(c % xseed.len().max(1)).copied().unwrap_or(0.0)).collect();
        let x = Tensor::sparse_list_vector("x", &xv);
        for a in [
            Tensor::csr_matrix("A", nrows, ncols, data),
            Tensor::vbl_matrix("A", nrows, ncols, data),
            Tensor::rle_matrix("A", nrows, ncols, data),
            Tensor::bitmap_matrix("A", nrows, ncols, data),
        ] {
            let mut k = spmspv_kernel(&a, &x, Protocol::Default, Protocol::Default);
            assert_engine_parity(&mut k, &format!("spmv over {}", a.levels()[1].format_name()));
        }
    }

    /// The parallel sharded tier, end to end: for random CSR matrices, a
    /// dense-output SpMV (a shardable dense outer row loop) produces
    /// bit-identical outputs and **exactly** equal `ExecStats` whether run
    /// serial or sharded, at every opt level, with the SIMD tier on and
    /// off, at every thread count — including more threads than rows.
    #[test]
    fn parallel_execution_is_bit_identical_to_serial(
        data in structured_vector(72),
        xseed in structured_vector(12),
        ncols in 2usize..12,
    ) {
        use looplets_repro::finch::{Engine, OptLevel};
        let ncols = ncols.min(data.len());
        let nrows = data.len() / ncols;
        if nrows == 0 {
            return Ok(());
        }
        let data = &data[..nrows * ncols];
        let xv: Vec<f64> = (0..ncols)
            .map(|c| xseed.get(c % xseed.len().max(1)).copied().unwrap_or(0.0))
            .collect();
        let a = Tensor::csr_matrix("A", nrows, ncols, data);
        let x = Tensor::dense_vector("x", &xv);
        let base = spmspv_kernel(&a, &x, Protocol::Default, Protocol::Default);
        let snapshot = |k: &mut looplets_repro::finch::CompiledKernel| {
            let stats = k.run_with(Engine::Bytecode).expect("bytecode runs");
            let bits: Vec<u64> =
                k.output("y").unwrap().iter().map(|v| v.to_bits()).collect();
            (stats, bits)
        };
        for level in OptLevel::all() {
            for simd in [true, false] {
                let mut serial = base.reoptimized_simd(level, true, simd);
                let expect = snapshot(&mut serial);
                for threads in [2usize, 3, 4, 8] {
                    let mut par = serial.clone().with_threads(threads);
                    prop_assert_eq!(par.threads(), threads);
                    let got = snapshot(&mut par);
                    prop_assert_eq!(
                        &expect,
                        &got,
                        "serial vs {} threads diverge at {} (simd={})",
                        threads,
                        level,
                        simd
                    );
                }
            }
        }
    }

    /// Sharded runs that assemble sparse outputs stitch per-shard
    /// `pos`/`idx`/`val` segments; the assembled arrays must be
    /// bit-identical to the serial assembly for random inputs at every
    /// thread count.
    #[test]
    fn parallel_sparse_assembly_is_bit_identical_to_serial(
        data in structured_vector(72),
        ncols in 2usize..12,
    ) {
        use looplets_repro::finch::{Engine, Level, LevelSpec};
        let ncols = ncols.min(data.len());
        let nrows = data.len() / ncols;
        if nrows == 0 {
            return Ok(());
        }
        let data = &data[..nrows * ncols];
        let a = Tensor::csr_matrix("A", nrows, ncols, data);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_format(
            "C",
            &[LevelSpec::Dense { size: nrows }, LevelSpec::SparseList { size: ncols }],
        );
        let (i, j) = (idx("i"), idx("j"));
        let program = forall(
            i.clone(),
            forall(j.clone(), assign(access("C", [i.clone(), j.clone()]), access("A", [i, j]))),
        );
        let base = kernel.compile(&program).expect("sparse copy compiles");
        let raw_level = |k: &mut looplets_repro::finch::CompiledKernel| {
            let stats = k.run_with(Engine::Bytecode).expect("bytecode runs");
            let t = k.output_tensor("C").expect("sparse output finalizes");
            let (pos, idx) = match &t.levels()[1] {
                Level::SparseList { pos, idx, .. } => (pos.clone(), idx.clone()),
                other => panic!("expected a sparse list level, got {other:?}"),
            };
            let bits: Vec<u64> = t.values().iter().map(|v| v.to_bits()).collect();
            (stats, pos, idx, bits)
        };
        let mut serial = base.clone();
        let expect = raw_level(&mut serial);
        for threads in [2usize, 4, 8] {
            let mut par = base.clone().with_threads(threads);
            let got = raw_level(&mut par);
            prop_assert_eq!(&expect, &got, "assembled pos/idx/val diverge at {} threads", threads);
        }
    }

    #[test]
    fn compiled_spmv_agrees_with_dense_for_any_data(
        data in structured_vector(72),
        xseed in structured_vector(12),
        ncols in 2usize..12,
    ) {
        let ncols = ncols.min(data.len());
        let nrows = data.len() / ncols;
        if nrows == 0 {
            return Ok(());
        }
        let data = &data[..nrows * ncols];
        let xv: Vec<f64> = (0..ncols).map(|c| xseed.get(c % xseed.len().max(1)).copied().unwrap_or(0.0)).collect();
        let expect = spmv_dense(nrows, ncols, data, &xv);
        let x = Tensor::sparse_list_vector("x", &xv);
        for a in [
            Tensor::csr_matrix("A", nrows, ncols, data),
            Tensor::vbl_matrix("A", nrows, ncols, data),
            Tensor::rle_matrix("A", nrows, ncols, data),
        ] {
            let mut k = spmspv_kernel(&a, &x, Protocol::Default, Protocol::Default);
            k.run().expect("spmv runs");
            let y = k.output("y").unwrap();
            for r in 0..nrows {
                prop_assert!(
                    (y[r] - expect[r]).abs() < 1e-6 * (1.0 + expect[r].abs()),
                    "row {r} of {}: got {}, expected {}",
                    a.levels()[1].format_name(),
                    y[r],
                    expect[r]
                );
            }
        }
    }
}
