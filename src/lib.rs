//! Workspace root library: re-exports the public facade of the Finch
//! reproduction so the top-level examples and integration tests have a
//! single import path (`looplets_repro::finch` and
//! `looplets_repro::baseline`).

#![warn(rust_2018_idioms)]

/// The Finch compiler facade (re-export of the `finch-core` crate).
pub extern crate finch;
/// Reference kernels and synthetic workload generators.
pub extern crate finch_baseline as baseline;
