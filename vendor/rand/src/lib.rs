//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim implements exactly the `rand` 0.8 API subset the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen`, `gen_range` and `gen_bool`.  The generator is a
//! deterministic splitmix64-seeded xoshiro256++, so workloads generated from
//! a fixed seed are reproducible across runs and platforms (which is all the
//! synthetic data generators in `finch-baseline` need — this is not a
//! cryptographic RNG).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic pseudorandom generator (xoshiro256++) standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::StdRng;

/// A generator that can be seeded from a `u64` (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { state: [next(), next(), next(), next()] }
    }
}

/// Core sampling interface (mirrors the subset of `rand::Rng` this
/// workspace uses).
pub trait Rng {
    /// Produce the next raw 64 bits of output.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a [`Standard`]-distributed type (`rng.gen::<f64>()`
    /// yields a uniform value in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable from the standard (uniform) distribution via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types [`Rng::gen_range`] can produce (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample from empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, isize, u8, i8, u16, i16, u32, i32, u64, i64);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    // Scale a unit sample onto [lo, hi] (closed: u may be 1).
                    let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    lo + u * (hi - lo)
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    lo + <$t as Standard>::sample(rng) * (hi - lo)
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from (a single blanket impl
/// per range shape, like real rand, so integer-literal inference works).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let z = r.gen_range(-4i32..9);
            assert!((-4..9).contains(&z));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.gen_range(0.5..10.0);
            assert!((0.5..10.0).contains(&x));
        }
    }

    #[test]
    fn inclusive_float_range_accepts_degenerate_bounds() {
        let mut r = StdRng::seed_from_u64(17);
        assert_eq!(r.gen_range(2.5..=2.5), 2.5);
        for _ in 0..1000 {
            let x = r.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(13);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
