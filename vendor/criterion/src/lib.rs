//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the API subset the `finch-bench` benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.  Instead of criterion's
//! statistical machinery it times `sample_size` iterations with
//! [`std::time::Instant`] after a short warm-up and prints mean/min per
//! benchmark — enough to eyeball the relative shapes the paper's figures
//! are about, while keeping `cargo bench` dependency-free.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimiser from deleting benchmarked
/// work (forwards to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; command-line configuration is not
    /// supported by the shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A named set of benchmarks sharing configuration (shim of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Run one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{id}: no samples (Bencher::iter never called)", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!("  {}/{id}: mean {mean:?}, min {min:?} over {} samples", self.name, samples.len());
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function label plus the value
/// of the varied parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function label and a displayed parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark (shim of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` calls of `f` (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Collect benchmark functions into one runnable group (shim of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the benchmark binary's `main` (shim of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
