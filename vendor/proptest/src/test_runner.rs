//! Test-runner support types: configuration, failure type, and the
//! deterministic RNG strategies draw from.

use std::fmt;

/// Per-test configuration (shim of `proptest::test_runner::ProptestConfig`;
/// only `cases` is supported).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case failed (shim of
/// `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    // NOTE: real proptest also has `reject`, which *discards* the case
    // rather than failing the test.  This shim deliberately omits it so a
    // test written against reject-semantics fails to compile instead of
    // silently failing at the first filtered case.
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator handed to strategies (xorshift64*; this shim
/// does not expose seeding to user code — `proptest!` derives a seed from
/// the test name and case index so failures are reproducible).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a raw 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed | 1, // xorshift state must be nonzero
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn below_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}
