//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type (shim of
/// `proptest::strategy::Strategy`; no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f` (shim of `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, isize, u8, i8, u16, i16, u32, i32, u64, i64);

/// Boxed strategies, so heterogeneous strategy types can share one `Value`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Erase a strategy's concrete type (used by [`prop_oneof!`](crate::prop_oneof)).
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Weighted choice among boxed strategies, built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}
