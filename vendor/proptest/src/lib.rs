//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the API subset the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, plus the [`Just`],
//!   integer-range, weighted-union and [`collection::vec`] strategies,
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//!   [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`], and
//! * [`test_runner::TestCaseError`] / [`test_runner::TestRng`] /
//!   [`prelude::ProptestConfig`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! regression files: each test runs `cases` deterministic random inputs and
//! panics (with the generated case index) on the first failure.  That is
//! sufficient for the oracle-comparison tests here, and keeps the shim tiny.
//!
//! [`Just`]: strategy::Just
//! [`collection::vec`]: collection::vec

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Create a strategy for vectors of `element` values with a length in
    /// `len` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below_in(self.len.start, self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual one-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Sub-namespace mirroring `proptest::prelude::prop` (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run one `proptest!`-generated test: `cases` iterations of generate +
/// execute, panicking with the case number on the first failure.
///
/// This is the runtime entry point the [`proptest!`] macro expands to; it is
/// public so the macro works from downstream crates, but is not part of the
/// real proptest API.
pub fn run_cases<F>(config: &test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // Deterministic per-test seed so failures are reproducible run-to-run.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
    for i in 0..config.cases {
        let mut rng =
            test_runner::TestRng::from_seed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("proptest `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Define property tests (shim of `proptest::proptest!`).
///
/// Supports the subset used in this repository: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.  Each body is
/// wrapped in a closure returning `Result<(), TestCaseError>`, so
/// `prop_assert!`-style early returns and a trailing `return Ok(());` both
/// work.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $cfg;
                $crate::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    #[allow(unreachable_code, clippy::needless_return)]
                    {
                        $body
                        return ::std::result::Result::Ok(());
                    }
                });
            }
        )*
    };
}

/// Weighted choice between strategies (shim of `proptest::prop_oneof!`).
///
/// Only the weighted form `prop_oneof![w1 => s1, w2 => s2, ...]` is
/// implemented; all arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body, failing the current case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body (shim of
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}
